"""Tests for the repro-ccm command-line interface."""

import pytest

from repro.experiments.cli import SCALES, build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_scale_presets_exist(self):
        assert set(SCALES) == {"bench", "default", "full"}

    def test_subcommands_registered(self):
        parser = build_parser()
        for name in ("fig3", "fig4", "tables", "theorem1", "accuracy",
                     "analysis", "ablations", "extensions", "statefree",
                     "robustness", "all"):
            args = parser.parse_args([name])
            assert callable(args.func)

    def test_overrides_parsed(self):
        args = build_parser().parse_args(
            ["tables", "--n-tags", "500", "--trials", "2",
             "--ranges", "2", "6", "--seed", "9"]
        )
        assert args.n_tags == 500
        assert args.trials == 2
        assert args.ranges == [2.0, 6.0]
        assert args.seed == 9

    def test_bad_scale_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig3", "--scale", "huge"])


class TestExecution:
    def test_fig3_small(self, capsys):
        code = main(["fig3", "--n-tags", "400", "--trials", "1",
                     "--ranges", "6", "10"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Fig. 3" in out

    def test_tables_small(self, capsys):
        code = main(["tables", "--n-tags", "400", "--trials", "1",
                     "--ranges", "6"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Table IV" in out
        assert "GMLE-CCM (measured)" in out

    def test_out_file_appended(self, tmp_path, capsys):
        target = tmp_path / "report.txt"
        main(["fig3", "--n-tags", "400", "--trials", "1",
              "--ranges", "6", "--out", str(target)])
        capsys.readouterr()
        assert "Fig. 3" in target.read_text()


class TestRenderCommand:
    def test_render_from_saved_sweep(self, tmp_path, capsys):
        sweep_path = tmp_path / "sweep.json"
        main(["tables", "--n-tags", "400", "--trials", "1",
              "--ranges", "6", "--json", str(sweep_path)])
        capsys.readouterr()
        code = main(["render", "--json", str(sweep_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "**Execution time (total slots)**" in out
        assert "| GMLE-CCM (measured) |" in out

    def test_render_requires_json(self):
        with pytest.raises(SystemExit):
            main(["render"])

    def test_csv_export(self, tmp_path, capsys):
        csv_path = tmp_path / "sweep.csv"
        main(["tables", "--n-tags", "400", "--trials", "1",
              "--ranges", "6", "--csv", str(csv_path)])
        capsys.readouterr()
        text = csv_path.read_text()
        assert text.startswith("tag_range_m,metric,mean")
        assert "sicp_slots" in text


class TestObservabilityFlags:
    def test_artifact_manifest_written_alongside_json(self, tmp_path, capsys):
        from repro.obs import RunManifest

        sweep_path = tmp_path / "sweep.json"
        main(["tables", "--n-tags", "400", "--trials", "1",
              "--ranges", "6", "--json", str(sweep_path)])
        capsys.readouterr()
        manifest_path = tmp_path / "sweep.manifest.json"
        assert manifest_path.exists()
        manifest = RunManifest.from_json(manifest_path.read_text())
        assert manifest.config["n_tags"] == 400
        assert manifest.elapsed_s > 0

    def test_metrics_out_records_whole_command(self, tmp_path, capsys):
        import json

        metrics_path = tmp_path / "metrics.ndjson"
        main(["fig3", "--n-tags", "200", "--trials", "1",
              "--ranges", "6", "--metrics-out", str(metrics_path)])
        capsys.readouterr()
        records = [
            json.loads(line)
            for line in metrics_path.read_text().splitlines()
        ]
        counters = {
            r["name"]: r["value"] for r in records if r["type"] == "counter"
        }
        assert counters["sweep_points_total"] == 1.0
        spans = {r["path"] for r in records if r["type"] == "span"}
        assert "experiment:fig3" in spans


class TestProfileCommand:
    def test_profile_prints_table_and_writes_artifacts(self, tmp_path, capsys):
        from repro.obs import RunManifest

        metrics_path = tmp_path / "profile.metrics.ndjson"
        manifest_path = tmp_path / "profile.manifest.json"
        trace_path = tmp_path / "profile.trace.ndjson"
        code = main([
            "profile", "--n", "300", "--frame", "64", "--seed", "3",
            "--metrics-out", str(metrics_path),
            "--manifest-out", str(manifest_path),
            "--trace-out", str(trace_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "phase" in out and "self s" in out and "cum s" in out
        assert "session/round/checking" in out
        assert "coverage: root spans account for" in out
        assert metrics_path.read_text().strip()
        manifest = RunManifest.from_json(manifest_path.read_text())
        assert manifest.config == {
            "n_tags": 300, "frame_size": 64, "tag_range_m": 6.0,
            "participation": 1.0,
        }
        assert manifest.extra["rounds"] >= 1
        assert '"kind": "session_end"' in trace_path.read_text()

    def test_profile_phase_totals_near_wall_time(self, tmp_path, capsys):
        import re

        main(["profile", "--n", "2000", "--frame", "333",
              "--metrics-out", str(tmp_path / "m.ndjson"),
              "--manifest-out", str(tmp_path / "m.json")])
        out = capsys.readouterr().out
        match = re.search(r"account for (\d+\.\d)% of", out)
        assert match, out
        assert float(match.group(1)) >= 95.0

    def test_profile_lossy_channel(self, tmp_path, capsys):
        from repro.obs import RunManifest

        manifest_path = tmp_path / "lossy.manifest.json"
        code = main([
            "profile", "--n", "300", "--frame", "64", "--seed", "3",
            "--loss", "0.2",
            "--metrics-out", str(tmp_path / "lossy.metrics.ndjson"),
            "--manifest-out", str(manifest_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "loss=0.2" in out
        assert "session/round/data_frame/propagate" in out
        manifest = RunManifest.from_json(manifest_path.read_text())
        assert manifest.config["loss"] == 0.2

    def test_profile_engine_choices(self, tmp_path, capsys):
        for engine in ("bigint", "packed"):
            code = main([
                "profile", "--n", "200", "--frame", "32", "--engine", engine,
                "--sort", "tree",
                "--metrics-out", str(tmp_path / f"{engine}.ndjson"),
                "--manifest-out", str(tmp_path / f"{engine}.json"),
            ])
            assert code == 0
        out = capsys.readouterr().out
        assert out.count("coverage:") == 2


class TestScenarioCommand:
    def test_run_static(self, tmp_path, capsys):
        journal = tmp_path / "journal.ndjson"
        code = main([
            "scenario", "run", "--n-tags", "250", "--frame", "83",
            "--operations", "2", "--seed", "3",
            "--journal", str(journal),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "trajectory=static" in out
        assert "completion 1.000" in out
        lines = journal.read_text().splitlines()
        assert '"kind":"scenario_start"' in lines[0].replace(" ", "")

    def test_run_uav_with_power(self, capsys):
        code = main([
            "scenario", "run", "--n-tags", "250", "--frame", "83",
            "--operations", "2", "--trajectory", "uav", "--speed", "6",
            "--power-threshold", "-22", "--seed", "3",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "trajectory=uav" in out
        assert "NO" in out  # some operation left sleeping data behind

    def test_sweep_compares_trajectories(self, capsys):
        code = main([
            "scenario", "sweep", "--n-tags", "250", "--frame", "83",
            "--operations", "2", "--trials", "1",
            "--trajectory", "static", "uav", "--speed", "6",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "static" in out and "uav" in out

    def test_metrics_out(self, tmp_path, capsys):
        metrics = tmp_path / "scenario.metrics.ndjson"
        code = main([
            "scenario", "run", "--n-tags", "200", "--frame", "65",
            "--operations", "1", "--metrics-out", str(metrics),
        ])
        assert code == 0
        capsys.readouterr()
        text = metrics.read_text()
        assert "scenario" in text

    def test_rejects_unknown_trajectory(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["scenario", "run", "--trajectory", "orbit"])
