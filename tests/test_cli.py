"""Tests for the repro-ccm command-line interface."""

import pytest

from repro.experiments.cli import SCALES, build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_scale_presets_exist(self):
        assert set(SCALES) == {"bench", "default", "full"}

    def test_subcommands_registered(self):
        parser = build_parser()
        for name in ("fig3", "fig4", "tables", "theorem1", "accuracy",
                     "analysis", "ablations", "extensions", "statefree",
                     "robustness", "all"):
            args = parser.parse_args([name])
            assert callable(args.func)

    def test_overrides_parsed(self):
        args = build_parser().parse_args(
            ["tables", "--n-tags", "500", "--trials", "2",
             "--ranges", "2", "6", "--seed", "9"]
        )
        assert args.n_tags == 500
        assert args.trials == 2
        assert args.ranges == [2.0, 6.0]
        assert args.seed == 9

    def test_bad_scale_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig3", "--scale", "huge"])


class TestExecution:
    def test_fig3_small(self, capsys):
        code = main(["fig3", "--n-tags", "400", "--trials", "1",
                     "--ranges", "6", "10"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Fig. 3" in out

    def test_tables_small(self, capsys):
        code = main(["tables", "--n-tags", "400", "--trials", "1",
                     "--ranges", "6"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Table IV" in out
        assert "GMLE-CCM (measured)" in out

    def test_out_file_appended(self, tmp_path, capsys):
        target = tmp_path / "report.txt"
        main(["fig3", "--n-tags", "400", "--trials", "1",
              "--ranges", "6", "--out", str(target)])
        capsys.readouterr()
        assert "Fig. 3" in target.read_text()


class TestRenderCommand:
    def test_render_from_saved_sweep(self, tmp_path, capsys):
        sweep_path = tmp_path / "sweep.json"
        main(["tables", "--n-tags", "400", "--trials", "1",
              "--ranges", "6", "--json", str(sweep_path)])
        capsys.readouterr()
        code = main(["render", "--json", str(sweep_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "**Execution time (total slots)**" in out
        assert "| GMLE-CCM (measured) |" in out

    def test_render_requires_json(self):
        with pytest.raises(SystemExit):
            main(["render"])

    def test_csv_export(self, tmp_path, capsys):
        csv_path = tmp_path / "sweep.csv"
        main(["tables", "--n-tags", "400", "--trials", "1",
              "--ranges", "6", "--csv", str(csv_path)])
        capsys.readouterr()
        text = csv_path.read_text()
        assert text.startswith("tag_range_m,metric,mean")
        assert "sicp_slots" in text
