"""Tests for repro.protocols.identification."""

import numpy as np
import pytest

from repro.protocols.identification import IterativeIdentification
from repro.protocols.transport import CCMTransport, TraditionalTransport


def _population(n):
    return list(range(1, n + 1))


class TestValidation:
    def test_load_positive(self):
        with pytest.raises(ValueError):
            IterativeIdentification(load=0.0)

    def test_rounds_positive(self):
        with pytest.raises(ValueError):
            IterativeIdentification(max_rounds=0)

    def test_empty_inventory(self):
        with pytest.raises(ValueError):
            IterativeIdentification().identify(
                TraditionalTransport([1]), [], seed=0
            )


class TestClosedSystem:
    def test_nothing_missing_all_confirmed_present(self):
        ids = _population(300)
        result = IterativeIdentification().identify(
            TraditionalTransport(ids), ids, seed=1
        )
        assert result.fully_resolved
        assert result.confirmed_missing == []
        assert result.confirmed_present == ids

    def test_identifies_exact_missing_set(self):
        ids = _population(400)
        gone = {7, 77, 177, 277, 377}
        present = [t for t in ids if t not in gone]
        result = IterativeIdentification().identify(
            TraditionalTransport(present), ids, seed=2
        )
        assert result.fully_resolved
        assert set(result.confirmed_missing) == gone
        assert set(result.confirmed_present) == set(present)

    def test_everything_missing(self):
        ids = _population(100)
        result = IterativeIdentification().identify(
            TraditionalTransport([]), ids, seed=3
        )
        assert set(result.confirmed_missing) == set(ids)
        assert result.confirmed_present == []

    def test_no_false_accusations_across_seeds(self):
        ids = _population(250)
        gone = set(range(1, 26))
        present = [t for t in ids if t not in gone]
        for seed in range(5):
            result = IterativeIdentification().identify(
                TraditionalTransport(present), ids, seed=seed
            )
            assert set(result.confirmed_missing) == gone
            assert not set(result.confirmed_present) & gone

    def test_convergence_trace(self):
        ids = _population(500)
        result = IterativeIdentification().identify(
            TraditionalTransport(ids), ids, seed=4
        )
        assert sum(result.resolved_per_round) == 500
        assert result.rounds == len(result.resolved_per_round)

    def test_max_rounds_leaves_unresolved(self):
        ids = _population(500)
        result = IterativeIdentification(max_rounds=1, load=5.0).identify(
            TraditionalTransport(ids), ids, seed=5
        )
        # One overloaded round cannot resolve everyone.
        assert result.unresolved
        assert not result.fully_resolved


class TestOpenSystem:
    def test_unknown_tag_detected(self):
        ids = _population(200)
        # The field holds an intruder the inventory does not know.
        field = ids + [999_999]
        result = IterativeIdentification().identify(
            TraditionalTransport(field), ids, seed=6
        )
        assert result.unknown_tag_detected

    def test_closed_field_reports_no_unknown(self):
        ids = _population(200)
        result = IterativeIdentification().identify(
            TraditionalTransport(ids), ids, seed=7
        )
        assert not result.unknown_tag_detected

    def test_open_mode_never_confirms_present(self):
        ids = _population(150)
        result = IterativeIdentification(
            assume_closed_system=False, max_rounds=4
        ).identify(TraditionalTransport(ids), ids, seed=8)
        assert result.confirmed_present == []
        assert result.confirmed_missing == []  # nothing is missing either

    def test_open_mode_still_identifies_missing(self):
        ids = _population(150)
        gone = {10, 20, 30}
        present = [t for t in ids if t not in gone]
        result = IterativeIdentification(
            assume_closed_system=False, max_rounds=12
        ).identify(TraditionalTransport(present), ids, seed=9)
        assert gone <= set(result.confirmed_missing)


class TestOverCCM:
    def test_identification_through_multihop(self, small_network):
        known = [int(t) for t in small_network.tag_ids]
        rng = np.random.default_rng(4)
        gone_idx = rng.choice(small_network.n_tags, size=15, replace=False)
        keep = np.ones(small_network.n_tags, dtype=bool)
        keep[gone_idx] = False
        present_net = small_network.subset(keep)
        gone_ids = {int(small_network.tag_ids[i]) for i in gone_idx}
        if not present_net.is_fully_reachable():
            pytest.skip("removals disconnected the relay network")
        result = IterativeIdentification().identify(
            CCMTransport(present_net), known, seed=11
        )
        assert result.fully_resolved
        assert set(result.confirmed_missing) == gone_ids

    def test_ccm_matches_traditional(self, small_network):
        """Theorem 1 once more: identical rounds, identical verdicts."""
        if not small_network.is_fully_reachable():
            pytest.skip("fixture has unreachable tags")
        known = [int(t) for t in small_network.tag_ids]
        ccm = IterativeIdentification().identify(
            CCMTransport(small_network), known, seed=12
        )
        trad = IterativeIdentification().identify(
            TraditionalTransport(known), known, seed=12
        )
        assert ccm.confirmed_missing == trad.confirmed_missing
        assert ccm.confirmed_present == trad.confirmed_present
        assert ccm.rounds == trad.rounds
