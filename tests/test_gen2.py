"""Tests for repro.net.gen2 — Gen2-derived slot timing."""

import pytest

from repro.net.gen2 import Gen2Params


class TestValidation:
    def test_defaults_valid(self):
        Gen2Params()

    def test_bad_tari(self):
        with pytest.raises(ValueError):
            Gen2Params(tari_us=0.0)

    def test_bad_miller(self):
        with pytest.raises(ValueError):
            Gen2Params(miller=3)

    def test_bad_data1(self):
        with pytest.raises(ValueError):
            Gen2Params(data1_tari=2.5)


class TestDerivedRates:
    def test_blf_from_dr_and_trcal(self):
        # DR=64/3, TRcal=66.7 us -> ~320 kHz (a standard operating point)
        assert Gen2Params().blf_khz == pytest.approx(320.0, rel=0.01)

    def test_fm0_bit_time_is_one_period(self):
        p = Gen2Params(miller=1)
        assert p.tag_bit_time_us == pytest.approx(1000.0 / p.blf_khz)

    def test_miller_scales_bit_time(self):
        m1 = Gen2Params(miller=1).tag_bit_time_us
        m8 = Gen2Params(miller=8).tag_bit_time_us
        assert m8 == pytest.approx(8 * m1)

    def test_reader_bit_between_tari_bounds(self):
        p = Gen2Params()
        assert p.tari_us < p.reader_bit_time_us < 2 * p.tari_us

    def test_t1_at_least_rtcal(self):
        p = Gen2Params()
        assert p.t1_us >= p.rtcal_us


class TestSlotDurations:
    def test_id_slot_much_longer_than_short(self):
        p = Gen2Params()
        ratio = p.id_slot_us() / p.short_slot_us()
        assert 3.0 < ratio < 20.0

    def test_slot_timing_positive_and_ordered(self):
        timing = Gen2Params().slot_timing()
        assert 0 < timing.short_slot_s < timing.id_slot_s

    def test_default_matches_library_ballpark(self):
        """The library-wide SlotTiming defaults (0.4 ms / 2.4 ms) are the
        same order as this profile's derivation."""
        timing = Gen2Params().slot_timing()
        assert 0.05e-3 < timing.short_slot_s < 1.0e-3
        assert 0.5e-3 < timing.id_slot_s < 10e-3

    def test_broadcast_scales_with_payload(self):
        p = Gen2Params()
        assert p.reader_broadcast_us(192) > p.reader_broadcast_us(96)
        with pytest.raises(ValueError):
            p.reader_broadcast_us(0)

    def test_faster_link_shrinks_slots(self):
        slow = Gen2Params(miller=8).slot_timing()
        fast = Gen2Params(miller=1).slot_timing()
        assert fast.short_slot_s < slow.short_slot_s
        assert fast.id_slot_s < slow.id_slot_s

    def test_eq3_seconds_view(self):
        """End-to-end: the r = 6 GMLE-CCM session (5,075 slots) maps to a
        sub-10-second wall-clock at this profile — the sanity scale for a
        warehouse inventory round."""
        from repro.net.timing import SlotCount

        timing = Gen2Params().slot_timing()
        session = SlotCount(short_slots=5075 - 54, id_slots=54)
        assert 0.5 < session.seconds(timing) < 10.0


#: The standard's Tari values (6.25/12.5/25 µs), both divide ratios, and
#: every Miller mode — the conformance grid.
CONFORMANCE_GRID = [
    Gen2Params(tari_us=tari, divide_ratio=dr, miller=m)
    for tari in (6.25, 12.5, 25.0)
    for dr in (8.0, 64.0 / 3.0)
    for m in (1, 2, 4, 8)
]


class TestConformanceGrid:
    """Link-timing invariants across the full Tari × DR × Miller grid."""

    @pytest.mark.parametrize("p", CONFORMANCE_GRID)
    def test_t2_is_ten_link_periods(self, p):
        assert p.t2_us == pytest.approx(10.0 * 1000.0 / p.blf_khz)

    @pytest.mark.parametrize("p", CONFORMANCE_GRID)
    def test_t1_dominated_by_max_rule(self, p):
        assert p.t1_us == pytest.approx(
            max(p.rtcal_us, 10.0 * 1000.0 / p.blf_khz)
        )

    @pytest.mark.parametrize("p", CONFORMANCE_GRID)
    def test_slots_ordered_and_positive(self, p):
        timing = p.slot_timing()
        assert 0 < timing.short_slot_s < timing.id_slot_s

    @pytest.mark.parametrize("p", CONFORMANCE_GRID)
    def test_id_slot_decomposition(self, p):
        """id_slot - short_slot is exactly the extra payload bits when the
        ID reply (not the reader broadcast) dominates t_id."""
        extra = (p.id_reply_bits - 1) * p.tag_bit_time_us
        assert p.id_slot_us() - p.short_slot_us() == pytest.approx(extra)

    @pytest.mark.parametrize("tari", (6.25, 12.5, 25.0))
    def test_dr8_slower_uplink_than_dr64_3(self, tari):
        """At equal TRcal, DR=8 means a lower BLF, hence longer tag bits."""
        dr8 = Gen2Params(tari_us=tari, divide_ratio=8.0)
        dr64 = Gen2Params(tari_us=tari, divide_ratio=64.0 / 3.0)
        assert dr8.blf_khz < dr64.blf_khz
        assert dr8.tag_bit_time_us > dr64.tag_bit_time_us

    def test_grid_stays_in_gen2_blf_window(self):
        """Every grid point's BLF lands in the standard's 40–640 kHz."""
        for p in CONFORMANCE_GRID:
            assert 40.0 <= p.blf_khz <= 640.0


class TestLibraryDefaultTiming:
    """Gen2Params().slot_timing() is the library's seconds-view default."""

    def test_default_slot_timing_is_gen2_derived(self):
        from repro.net.timing import default_slot_timing

        assert default_slot_timing() == Gen2Params().slot_timing()

    def test_default_slot_timing_cached(self):
        from repro.net.timing import default_slot_timing

        assert default_slot_timing() is default_slot_timing()

    def test_seconds_defaults_to_gen2(self):
        from repro.net.timing import SlotCount

        sc = SlotCount(short_slots=100, id_slots=4)
        assert sc.seconds() == pytest.approx(
            sc.seconds(Gen2Params().slot_timing())
        )

    def test_explicit_timing_still_wins(self):
        from repro.net.timing import SlotCount, SlotTiming

        timing = SlotTiming(short_slot_s=1.0, id_slot_s=2.0)
        assert SlotCount(3, 1).seconds(timing) == pytest.approx(5.0)
