"""Tests for repro.analysis.estimation_theory."""

import math

import pytest

from repro.analysis.estimation_theory import (
    detection_curve,
    executions_required,
    expected_idle_fraction,
    frames_required,
    per_frame_relative_stderr,
    per_frame_relative_variance,
    repeated_detection_probability,
    solve_optimal_load,
)
from repro.protocols.gmle import OPTIMAL_LOAD


class TestIdleFraction:
    def test_zero_load(self):
        assert expected_idle_fraction(0.0) == 1.0

    def test_decreasing(self):
        assert expected_idle_fraction(2.0) < expected_idle_fraction(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            expected_idle_fraction(-1.0)


class TestVariance:
    def test_formula(self):
        lam, f = 1.0, 100
        assert per_frame_relative_variance(lam, f) == pytest.approx(
            (math.e - 1) / 100
        )

    def test_stderr_is_sqrt(self):
        assert per_frame_relative_stderr(1.5, 200) == pytest.approx(
            math.sqrt(per_frame_relative_variance(1.5, 200))
        )

    def test_minimum_at_optimal_load(self):
        best = per_frame_relative_variance(OPTIMAL_LOAD, 1000)
        for lam in (0.5, 1.0, 1.3, 2.0, 3.0):
            assert per_frame_relative_variance(lam, 1000) >= best

    def test_validation(self):
        with pytest.raises(ValueError):
            per_frame_relative_variance(0.0, 100)
        with pytest.raises(ValueError):
            per_frame_relative_variance(1.0, 0)


class TestFramesRequired:
    def test_paper_frame_needs_one(self):
        assert frames_required(0.95, 0.05, 1671, OPTIMAL_LOAD) == 1

    def test_small_frame_needs_more(self):
        k = frames_required(0.95, 0.05, 128, OPTIMAL_LOAD)
        assert k > 10

    def test_scales_inverse_beta_squared(self):
        k1 = frames_required(0.95, 0.05, 128, OPTIMAL_LOAD)
        k2 = frames_required(0.95, 0.025, 128, OPTIMAL_LOAD)
        assert k2 == pytest.approx(4 * k1, rel=0.1)


class TestOptimalLoad:
    def test_matches_constant(self):
        assert solve_optimal_load() == pytest.approx(OPTIMAL_LOAD, abs=1e-9)

    def test_stationarity(self):
        lam = solve_optimal_load()
        assert lam * math.exp(lam) == pytest.approx(
            2 * (math.exp(lam) - 1), rel=1e-10
        )


class TestRepeatedDetection:
    def test_compounds(self):
        single = repeated_detection_probability(1000, 256, 5, 1)
        double = repeated_detection_probability(1000, 256, 5, 2)
        assert double == pytest.approx(1 - (1 - single) ** 2)

    def test_validation(self):
        with pytest.raises(ValueError):
            repeated_detection_probability(1000, 256, 5, 0)

    def test_executions_required_consistent(self):
        k = executions_required(1000, 256, 5, 0.99)
        assert repeated_detection_probability(1000, 256, 5, k) >= 0.99
        if k > 1:
            assert repeated_detection_probability(1000, 256, 5, k - 1) < 0.99

    def test_executions_required_one_when_single_suffices(self):
        assert executions_required(100, 1 << 16, 10, 0.9) == 1

    def test_executions_validation(self):
        with pytest.raises(ValueError):
            executions_required(1000, 256, 5, 1.0)


class TestDetectionCurve:
    def test_monotone_in_missing(self):
        curve = detection_curve(1000, 256, [1, 5, 20, 100])
        assert all(a < b for a, b in zip(curve, curve[1:]))
