"""Tests for repro.net.mobility and the state-freedom experiment."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.net.geometry import Point, uniform_disk
from repro.net.mobility import displace, relocate_fraction
from repro.experiments import statefree


class TestDisplace:
    def test_zero_step_is_identity(self):
        pos = uniform_disk(100, 20.0, seed=1)
        moved = displace(pos, 0.0, 20.0, seed=2)
        assert np.allclose(moved, pos)

    def test_step_bounded(self):
        pos = uniform_disk(300, 20.0, seed=1)
        moved = displace(pos, 2.5, 25.0, seed=2)
        d = np.hypot(*(moved - pos).T)
        assert np.all(d <= 2.5 + 1e-9)

    def test_stays_in_disk(self):
        pos = uniform_disk(300, 10.0, seed=3)
        moved = displace(pos, 5.0, 10.0, seed=4)
        assert np.all(np.hypot(moved[:, 0], moved[:, 1]) <= 10.0 + 1e-9)

    def test_offset_center_respected(self):
        center = Point(50.0, 50.0)
        pos = uniform_disk(100, 5.0, center=center, seed=5)
        moved = displace(pos, 3.0, 5.0, center=center, seed=6)
        d = np.hypot(moved[:, 0] - 50.0, moved[:, 1] - 50.0)
        assert np.all(d <= 5.0 + 1e-9)

    def test_validation(self):
        pos = uniform_disk(10, 5.0, seed=1)
        with pytest.raises(ValueError):
            displace(pos, -1.0, 5.0)
        with pytest.raises(ValueError):
            displace(pos, 1.0, 0.0)

    def test_seed_reproducible(self):
        pos = uniform_disk(50, 5.0, seed=1)
        a = displace(pos, 1.0, 5.0, seed=9)
        b = displace(pos, 1.0, 5.0, seed=9)
        assert np.array_equal(a, b)


class TestRelocate:
    def test_zero_fraction_identity(self):
        pos = uniform_disk(100, 20.0, seed=1)
        assert np.array_equal(relocate_fraction(pos, 0.0, 20.0, seed=2), pos)

    def test_fraction_moved(self):
        pos = uniform_disk(200, 20.0, seed=1)
        moved = relocate_fraction(pos, 0.25, 20.0, seed=2)
        changed = np.any(moved != pos, axis=1)
        assert changed.sum() == 50

    def test_all_moved(self):
        pos = uniform_disk(100, 20.0, seed=1)
        moved = relocate_fraction(pos, 1.0, 20.0, seed=2)
        assert np.all(np.hypot(moved[:, 0], moved[:, 1]) <= 20.0 + 1e-9)

    def test_validation(self):
        pos = uniform_disk(10, 5.0, seed=1)
        with pytest.raises(ValueError):
            relocate_fraction(pos, 1.5, 5.0)
        with pytest.raises(ValueError):
            relocate_fraction(pos, 0.5, 0.0)


class TestRngSeedExclusive:
    """``rng=`` and ``seed=`` are mutually exclusive, never merged."""

    def test_displace_rejects_both(self):
        pos = uniform_disk(10, 5.0, seed=1)
        with pytest.raises(ValueError, match="not both"):
            displace(pos, 1.0, 5.0, rng=np.random.default_rng(0), seed=1)

    def test_relocate_rejects_both(self):
        pos = uniform_disk(10, 5.0, seed=1)
        with pytest.raises(ValueError, match="not both"):
            relocate_fraction(
                pos, 0.5, 5.0, rng=np.random.default_rng(0), seed=1
            )

    def test_explicit_rng_advances_stream(self):
        """An explicit Generator is consumed in place — two calls on the
        same Generator continue the stream (the scenario contract)."""
        pos = uniform_disk(50, 5.0, seed=1)
        gen = np.random.default_rng(7)
        first = displace(pos, 1.0, 5.0, rng=gen)
        second = displace(pos, 1.0, 5.0, rng=gen)
        assert not np.array_equal(first, second)
        # Re-seeding reproduces the exact same pair of movements.
        gen2 = np.random.default_rng(7)
        assert np.array_equal(displace(pos, 1.0, 5.0, rng=gen2), first)
        assert np.array_equal(displace(pos, 1.0, 5.0, rng=gen2), second)


mobility_params = {
    "n": st.integers(min_value=1, max_value=120),
    "radius": st.floats(min_value=0.5, max_value=50.0),
    "seed": st.integers(min_value=0, max_value=2**32 - 1),
}


class TestMobilityProperties:
    """Hypothesis invariants: never leave the disk, bit-deterministic."""

    @settings(max_examples=40, deadline=None)
    @given(
        n=mobility_params["n"],
        radius=mobility_params["radius"],
        step=st.floats(min_value=0.0, max_value=100.0),
        seed=mobility_params["seed"],
    )
    def test_displace_never_leaves_disk(self, n, radius, step, seed):
        pos = uniform_disk(n, radius, seed=seed)
        moved = displace(pos, step, radius, seed=seed + 1)
        assert np.all(
            np.hypot(moved[:, 0], moved[:, 1]) <= radius * (1 + 1e-12) + 1e-9
        )

    @settings(max_examples=40, deadline=None)
    @given(
        n=mobility_params["n"],
        radius=mobility_params["radius"],
        step=st.floats(min_value=0.0, max_value=100.0),
        seed=mobility_params["seed"],
    )
    def test_displace_step_bounded(self, n, radius, step, seed):
        pos = uniform_disk(n, radius, seed=seed)
        moved = displace(pos, step, radius, seed=seed + 1)
        d = np.hypot(*(moved - pos).T)
        # Clamping can only shorten a step, never lengthen it.
        assert np.all(d <= step + 1e-9)

    @settings(max_examples=40, deadline=None)
    @given(
        n=mobility_params["n"],
        radius=mobility_params["radius"],
        frac=st.floats(min_value=0.0, max_value=1.0),
        seed=mobility_params["seed"],
    )
    def test_relocate_never_leaves_disk(self, n, radius, frac, seed):
        pos = uniform_disk(n, radius, seed=seed)
        moved = relocate_fraction(pos, frac, radius, seed=seed + 1)
        assert np.all(
            np.hypot(moved[:, 0], moved[:, 1]) <= radius * (1 + 1e-12) + 1e-9
        )
        assert (np.any(moved != pos, axis=1)).sum() == int(round(frac * n))

    @settings(max_examples=25, deadline=None)
    @given(
        n=mobility_params["n"],
        radius=mobility_params["radius"],
        seed=mobility_params["seed"],
    )
    def test_bit_determinism_per_seed(self, n, radius, seed):
        pos = uniform_disk(n, radius, seed=seed)
        a = displace(pos, 1.5, radius, seed=seed)
        b = displace(pos, 1.5, radius, seed=seed)
        assert a.tobytes() == b.tobytes()
        c = relocate_fraction(pos, 0.5, radius, seed=seed)
        d = relocate_fraction(pos, 0.5, radius, seed=seed)
        assert c.tobytes() == d.tobytes()

    @settings(max_examples=25, deadline=None)
    @given(seed=mobility_params["seed"])
    def test_input_positions_never_mutated(self, seed):
        pos = uniform_disk(60, 8.0, seed=seed)
        before = pos.copy()
        displace(pos, 3.0, 8.0, seed=seed)
        relocate_fraction(pos, 0.5, 8.0, seed=seed)
        assert np.array_equal(pos, before)


class TestStateFreeExperiment:
    def test_stale_tree_degrades_ccm_does_not(self):
        rows = statefree.run(
            n_tags=600, max_steps=[0.0, 4.0], n_trials=2, frame_size=128
        )
        by_step = {row.max_step_m: row for row in rows}
        assert by_step[0.0].sicp_stale_delivered_fraction == pytest.approx(1.0)
        assert by_step[4.0].sicp_stale_delivered_fraction < 0.9
        for row in rows:
            assert row.ccm_complete
            assert row.ccm_bitmap_exact

    def test_report_renders(self):
        rows = statefree.run(
            n_tags=400, max_steps=[0.0], n_trials=1, frame_size=64
        )
        text = statefree.report(rows)
        assert "state-free" in text.lower() or "State-free" in text
