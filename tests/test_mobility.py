"""Tests for repro.net.mobility and the state-freedom experiment."""

import numpy as np
import pytest

from repro.net.geometry import Point, uniform_disk
from repro.net.mobility import displace, relocate_fraction
from repro.experiments import statefree


class TestDisplace:
    def test_zero_step_is_identity(self):
        pos = uniform_disk(100, 20.0, seed=1)
        moved = displace(pos, 0.0, 20.0, seed=2)
        assert np.allclose(moved, pos)

    def test_step_bounded(self):
        pos = uniform_disk(300, 20.0, seed=1)
        moved = displace(pos, 2.5, 25.0, seed=2)
        d = np.hypot(*(moved - pos).T)
        assert np.all(d <= 2.5 + 1e-9)

    def test_stays_in_disk(self):
        pos = uniform_disk(300, 10.0, seed=3)
        moved = displace(pos, 5.0, 10.0, seed=4)
        assert np.all(np.hypot(moved[:, 0], moved[:, 1]) <= 10.0 + 1e-9)

    def test_offset_center_respected(self):
        center = Point(50.0, 50.0)
        pos = uniform_disk(100, 5.0, center=center, seed=5)
        moved = displace(pos, 3.0, 5.0, center=center, seed=6)
        d = np.hypot(moved[:, 0] - 50.0, moved[:, 1] - 50.0)
        assert np.all(d <= 5.0 + 1e-9)

    def test_validation(self):
        pos = uniform_disk(10, 5.0, seed=1)
        with pytest.raises(ValueError):
            displace(pos, -1.0, 5.0)
        with pytest.raises(ValueError):
            displace(pos, 1.0, 0.0)

    def test_seed_reproducible(self):
        pos = uniform_disk(50, 5.0, seed=1)
        a = displace(pos, 1.0, 5.0, seed=9)
        b = displace(pos, 1.0, 5.0, seed=9)
        assert np.array_equal(a, b)


class TestRelocate:
    def test_zero_fraction_identity(self):
        pos = uniform_disk(100, 20.0, seed=1)
        assert np.array_equal(relocate_fraction(pos, 0.0, 20.0, seed=2), pos)

    def test_fraction_moved(self):
        pos = uniform_disk(200, 20.0, seed=1)
        moved = relocate_fraction(pos, 0.25, 20.0, seed=2)
        changed = np.any(moved != pos, axis=1)
        assert changed.sum() == 50

    def test_all_moved(self):
        pos = uniform_disk(100, 20.0, seed=1)
        moved = relocate_fraction(pos, 1.0, 20.0, seed=2)
        assert np.all(np.hypot(moved[:, 0], moved[:, 1]) <= 20.0 + 1e-9)

    def test_validation(self):
        pos = uniform_disk(10, 5.0, seed=1)
        with pytest.raises(ValueError):
            relocate_fraction(pos, 1.5, 5.0)
        with pytest.raises(ValueError):
            relocate_fraction(pos, 0.5, 0.0)


class TestStateFreeExperiment:
    def test_stale_tree_degrades_ccm_does_not(self):
        rows = statefree.run(
            n_tags=600, max_steps=[0.0, 4.0], n_trials=2, frame_size=128
        )
        by_step = {row.max_step_m: row for row in rows}
        assert by_step[0.0].sicp_stale_delivered_fraction == pytest.approx(1.0)
        assert by_step[4.0].sicp_stale_delivered_fraction < 0.9
        for row in rows:
            assert row.ccm_complete
            assert row.ccm_bitmap_exact

    def test_report_renders(self):
        rows = statefree.run(
            n_tags=400, max_steps=[0.0], n_trials=1, frame_size=64
        )
        text = statefree.report(rows)
        assert "state-free" in text.lower() or "State-free" in text
