"""Tests for repro.protocols.cicp — contention-based collection."""

import pytest

from repro.protocols.cicp import run_cicp
from repro.protocols.sicp import run_sicp


class TestCICP:
    def test_collects_every_reachable_id(self, small_network):
        result = run_cicp(small_network, seed=1)
        reachable = set(
            int(t)
            for t in small_network.tag_ids[small_network.reachable_mask]
        )
        assert set(result.collected_ids) == reachable

    def test_no_duplicates(self, small_network):
        result = run_cicp(small_network, seed=2)
        assert len(result.collected_ids) == len(set(result.collected_ids))

    def test_line_collection(self, line_network):
        result = run_cicp(line_network, seed=3)
        assert sorted(result.collected_ids) == [1, 2, 3, 4, 5]

    def test_window_validation(self, line_network):
        with pytest.raises(ValueError):
            run_cicp(line_network, window=1)

    def test_attempts_at_least_transfers(self, small_network):
        result = run_cicp(small_network, seed=4)
        transfers = int(result.tree.depth[result.tree.attached_mask()].sum())
        assert result.attempts >= transfers

    def test_costs_more_than_sicp(self, small_network):
        """The paper's rationale for benchmarking SICP: contention-based
        collection costs more.  CICP burns all its time in full-length
        ID slots and far more transmissions (collisions), so we compare
        wall-clock via SlotTiming and per-tag sent energy."""
        cicp = run_cicp(small_network, seed=5)
        sicp = run_sicp(small_network, seed=5)
        assert cicp.slots.seconds() > sicp.slots.seconds()
        assert cicp.ledger.avg_sent() > sicp.ledger.avg_sent()

    def test_seed_reproducible(self, small_network):
        a = run_cicp(small_network, seed=6)
        b = run_cicp(small_network, seed=6)
        assert a.slots.total_slots == b.slots.total_slots
        assert a.collected_ids == b.collected_ids

    def test_max_windows_bounds_work(self, small_network):
        result = run_cicp(small_network, seed=7, max_windows=5)
        # Truncated run: collected fewer IDs but did not hang.
        assert result.windows <= 5
        assert len(result.collected_ids) <= small_network.n_tags
