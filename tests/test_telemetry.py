"""Cross-process telemetry: snapshots, merging, traces, dash, bench history.

Covers the observability pipeline end to end below the service layer:
``repro-metrics-snapshot-v1`` round-trips and merge semantics, the
registry tee, trace contexts and Chrome trace export, serial/process
bit-identity of merged campaign telemetry (including under the *spawn*
start method, via a subprocess), Prometheus label escaping conformance,
bounded event-log retention, the bench trajectory history, and the
dashboard renderers.  Service-layer trace propagation lives in
``test_serve.py``.
"""

from __future__ import annotations

import io
import json
import os
import subprocess
import sys
import textwrap
from dataclasses import dataclass

import pytest

from repro.obs import (
    SNAPSHOT_SCHEMA,
    MetricsRegistry,
    TeeRegistry,
    TraceContext,
    chrome_trace,
    render_prometheus,
    use_registry,
)
from repro.obs.dash import (
    DashState,
    ansi_strip,
    parse_prometheus,
    render_dashboard,
    render_span_tree,
    span_bars,
)
from repro.obs.export import EventLog
from repro.obs import bench_track
from repro.sim.parallel import Campaign, ExecutorConfig, stderr_ticker
from repro.sim.plan import RunPlan


@dataclass(frozen=True)
class SpanTrial:
    """A deterministic trial that records spans and counters."""

    def __call__(self, trial_index: int, seed: int):
        from repro.obs import get_registry

        obs = get_registry()
        with obs.span("work"):
            with obs.span("inner"):
                obs.inc("trial_units", 3)
        obs.observe("trial_value", float(seed % 7), buckets=(1.0, 5.0, 10.0))
        return {"value": float(seed % 97)}


# -- snapshot round-trip and merge ---------------------------------------------


class TestSnapshot:
    def test_round_trip_preserves_everything(self):
        reg = MetricsRegistry(trace=TraceContext.new())
        reg.inc("c", 2)
        reg.set_gauge("g", 4.5)
        reg.observe("h", 0.3, buckets=(0.1, 1.0))
        with reg.span("a"):
            with reg.span("b"):
                pass
        doc = reg.to_dict()
        assert doc["schema"] == SNAPSHOT_SCHEMA
        clone = MetricsRegistry.from_dict(doc)
        assert clone.counters()["c"].value == 2
        assert clone.gauges()["g"].value == 4.5
        assert clone.histograms()["h"].count == 1
        assert set(clone.span_stats()) == {("a",), ("a", "b")}
        assert clone.trace.trace_id == reg.trace.trace_id

    def test_unknown_schema_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry.from_dict({"schema": "metrics-v999"})

    def test_merge_semantics(self):
        a = MetricsRegistry()
        a.inc("c", 1)
        a.set_gauge("g", 1.0)
        a.observe("h", 0.05, buckets=(0.1, 1.0))
        b = MetricsRegistry()
        b.inc("c", 4)
        b.set_gauge("g", 9.0)
        b.observe("h", 0.5, buckets=(0.1, 1.0))
        with b.span("work"):
            pass
        a.merge(b.to_dict(), prefix=("trial",))
        assert a.counters()["c"].value == 5  # counters add
        assert a.gauges()["g"].value == 9.0  # gauges last-write
        assert a.histograms()["h"].count == 2  # histograms bucket-wise
        assert ("trial", "work") in a.span_stats()  # spans re-prefixed

    def test_merge_rejects_mismatched_histogram_layout(self):
        a = MetricsRegistry()
        a.observe("h", 0.5, buckets=(0.1, 1.0))
        b = MetricsRegistry()
        b.observe("h", 0.5, buckets=(0.25, 2.0))
        with pytest.raises(ValueError):
            a.merge(b.to_dict())

    def test_tee_fans_out_writes(self):
        left, right = MetricsRegistry(), MetricsRegistry()
        tee = TeeRegistry(left, right)
        tee.inc("c")
        with tee.span("s"):
            pass
        for sink in (left, right):
            assert sink.counters()["c"].value == 1
            assert ("s",) in sink.span_stats()


# -- trace context and Chrome export -------------------------------------------


class TestTraceContext:
    def test_round_trip_and_child(self):
        trace = TraceContext.new()
        assert len(trace.trace_id) == 32
        child = trace.child()
        assert child.trace_id == trace.trace_id
        clone = TraceContext.from_dict(trace.to_dict())
        assert clone == trace

    def test_empty_trace_id_rejected(self):
        with pytest.raises(ValueError):
            TraceContext(trace_id="")

    def test_chrome_trace_exports_timeline(self):
        reg = MetricsRegistry(trace=TraceContext.new())
        reg.enable_timeline()
        with reg.span("outer"):
            with reg.span("inner"):
                pass
        doc = chrome_trace(reg)
        events = doc["traceEvents"]
        assert len(events) == 2
        assert {e["ph"] for e in events} == {"X"}
        names = {e["name"] for e in events}
        assert names == {"outer", "inner"}
        assert all(e["ts"] >= 0 for e in events)  # rebased per pid
        assert doc["otherData"]["trace_id"] == reg.trace.trace_id


# -- campaign telemetry: serial vs process bit-identity ------------------------


class TestCampaignMergeIdentity:
    def _run(self, backend: str) -> MetricsRegistry:
        reg = MetricsRegistry()
        plan = RunPlan(
            executor=ExecutorConfig(workers=2, backend=backend)
        )
        with use_registry(reg):
            result = Campaign(SpanTrial(), 6, 11, plan=plan).run()
        assert result.n_ok == 6
        return reg

    def test_process_merge_matches_serial(self):
        serial = self._run("serial")
        process = self._run("process")
        # identical span trees with identical counts
        serial_counts = {
            path: count for path, (count, _s) in serial.span_stats().items()
        }
        process_counts = {
            path: count for path, (count, _s) in process.span_stats().items()
        }
        assert serial_counts == process_counts
        assert ("campaign", "trial", "work", "inner") in process_counts
        # identical counters and histogram shapes
        assert (
            serial.counters()["trial_units"].value
            == process.counters()["trial_units"].value
            == 18
        )
        serial_h = serial.histograms()["trial_value"]
        process_h = process.histograms()["trial_value"]
        assert serial_h.counts == process_h.counts
        assert serial_h.sum == process_h.sum

    def test_spawn_start_method_merges_identically(self, tmp_path):
        """Worker snapshots survive the spawn pickle boundary.

        Spawn re-imports ``__main__``, so the check must run from a real
        script file in a subprocess, not from this test process.
        """
        script = tmp_path / "spawn_check.py"
        script.write_text(textwrap.dedent(
            """
            import multiprocessing
            import sys

            from repro.obs import MetricsRegistry, use_registry
            from repro.sim.parallel import Campaign, ExecutorConfig
            from repro.sim.plan import RunPlan
            from test_telemetry import SpanTrial


            def run(backend):
                reg = MetricsRegistry()
                plan = RunPlan(
                    executor=ExecutorConfig(workers=2, backend=backend)
                )
                with use_registry(reg):
                    Campaign(SpanTrial(), 4, 5, plan=plan).run()
                return reg


            if __name__ == "__main__":
                multiprocessing.set_start_method("spawn", force=True)
                serial = run("serial")
                process = run("process")
                s = {p: c for p, (c, _) in serial.span_stats().items()}
                w = {p: c for p, (c, _) in process.span_stats().items()}
                assert s == w, (s, w)
                assert (
                    serial.counters()["trial_units"].value
                    == process.counters()["trial_units"].value
                )
                print("SPAWN-OK")
            """
        ))
        env = dict(os.environ)
        here = os.path.dirname(os.path.abspath(__file__))
        src = os.path.abspath(os.path.join(here, "..", "src"))
        env["PYTHONPATH"] = os.pathsep.join(
            [src, here]
            + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
        )
        proc = subprocess.run(
            [sys.executable, str(script)],
            env=env,
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "SPAWN-OK" in proc.stdout

    def test_ticker_live_line_splits_hits_and_computed(self):
        stream = io.StringIO()
        tick = stderr_ticker(3, stream=stream)
        tick(0, 0.1, {"v": 1.0}, from_cache=True)
        tick(1, 0.2, {"v": 1.0})
        tick(2, 0.3, {"v": 1.0}, from_cache=True)
        out = stream.getvalue()
        # the live \r line splits the same way the final summary does
        live = [line for line in out.split("\r") if "3/3" in line][0]
        assert "2 hit, 1 computed" in live
        assert "2 hit, 1 computed" in out.splitlines()[-1]


# -- Prometheus escaping conformance -------------------------------------------


class TestPrometheusEscaping:
    def test_label_values_escape_and_round_trip(self):
        reg = MetricsRegistry()
        nasty = 'pha"se\\one\nend'
        with reg.span(nasty):
            pass
        text = render_prometheus(reg)
        line = next(
            ln for ln in text.splitlines()
            if ln.startswith("span_seconds_total")
        )
        # conformance: the three escapes of the text exposition format
        assert '\\"' in line
        assert "\\\\" in line
        assert "\\n" in line and "\n" not in line
        # and the parser restores the original path exactly
        samples = parse_prometheus(text)
        paths = [
            s.label("path") for s in samples if s.name == "span_calls_total"
        ]
        assert paths == [nasty]


# -- bounded event retention ---------------------------------------------------


class TestEventRetention:
    def test_window_reports_truncation(self):
        log = EventLog(maxlen=3)
        for i in range(7):
            log.append("trial", trial_index=i)
        assert log.first_seq == 4
        assert log.dropped == 4
        records, truncated = log.window(0)
        assert truncated is True
        assert [r["seq"] for r in records] == [4, 5, 6]
        records, truncated = log.window(4)
        assert truncated is False

    def test_window_without_overflow_is_not_truncated(self):
        log = EventLog(maxlen=10)
        log.append("trial")
        records, truncated = log.window(0)
        assert truncated is False
        assert len(records) == 1


# -- bench trajectory history --------------------------------------------------


def manifest_doc(elapsed=1.0, per_s=10.0, created="2026-01-01T00:00:00Z"):
    return {
        "format": "repro-run-manifest-v1",
        "created_utc": created,
        "elapsed_s": elapsed,
        "git_rev": "abc1234def",
        "host": "testhost",
        "python_version": "3.11.7",
        "numpy_version": "2.4.6",
        "engine": "packed",
        "seed": 1,
        "config": {"n_tags": 100},
        "extra": {"trials_per_s": per_s, "nested": {"seconds": elapsed}},
    }


class TestBenchTrack:
    def test_record_and_load_round_trip(self, tmp_path):
        manifest = tmp_path / "BENCH_demo.json"
        manifest.write_text(json.dumps(manifest_doc()))
        history = tmp_path / "history.ndjson"
        record = bench_track.record_manifest(manifest, history)
        assert record.name == "demo"
        loaded = bench_track.load_history(history)
        assert loaded == [record]
        assert loaded[0].metric_map["elapsed_s"] == 1.0
        assert loaded[0].metric_map["nested.seconds"] == 1.0
        assert dict(loaded[0].contracts) == {
            "batch_rng": "repro-batch-rng-v1",
            "channel_rng": "repro-channel-rng-v1",
        }

    def test_schema_validation_rejects_bad_lines(self, tmp_path):
        history = tmp_path / "history.ndjson"
        history.write_text('{"schema": "nope"}\n')
        with pytest.raises(ValueError):
            bench_track.load_history(history)
        history.write_text(json.dumps({
            "schema": bench_track.HISTORY_SCHEMA,
            "name": "x",
            "created_utc": "t",
            "metrics": {"elapsed_s": 1.0},
            "surprise": True,
        }) + "\n")
        with pytest.raises(ValueError):  # unknown keys rejected
            bench_track.load_history(history)

    def test_direction_heuristics(self):
        assert bench_track.metric_direction("trials_per_s") == "higher"
        assert bench_track.metric_direction("speedup_vs_dispatch") == "higher"
        assert bench_track.metric_direction("elapsed_s") == "lower"
        assert bench_track.metric_direction("peak_rss_bytes") == "lower"
        assert bench_track.metric_direction("rounds") is None

    def test_compare_flags_regressions_beyond_noise(self, tmp_path):
        history = tmp_path / "history.ndjson"
        for elapsed, per_s in ((1.0, 10.0), (2.0, 4.0)):
            manifest = tmp_path / "BENCH_demo.json"
            manifest.write_text(json.dumps(manifest_doc(elapsed, per_s)))
            bench_track.record_manifest(manifest, history)
        records = bench_track.load_history(history)
        deltas = bench_track.compare_history(records, noise=0.25)
        verdicts = {
            (d.metric, d.verdict) for d in deltas
        }
        assert ("elapsed_s", "regression") in verdicts
        assert ("trials_per_s", "regression") in verdicts
        text, regressed = bench_track.render_compare(records, noise=0.25)
        assert regressed is True
        assert "REGRESSION" in text

    def test_compare_within_noise_is_quiet(self, tmp_path):
        history = tmp_path / "history.ndjson"
        for elapsed in (1.0, 1.1):
            manifest = tmp_path / "BENCH_demo.json"
            manifest.write_text(json.dumps(manifest_doc(elapsed)))
            bench_track.record_manifest(manifest, history)
        records = bench_track.load_history(history)
        text, regressed = bench_track.render_compare(records, noise=0.25)
        assert regressed is False
        assert "within the noise band" in text

    def test_report_renders_trajectories(self, tmp_path):
        history = tmp_path / "history.ndjson"
        manifest = tmp_path / "BENCH_demo.json"
        manifest.write_text(json.dumps(manifest_doc()))
        bench_track.record_manifest(manifest, history)
        text = bench_track.render_report(bench_track.load_history(history))
        assert "bench demo" in text
        assert "trials_per_s" in text

    def test_committed_history_validates(self):
        """The repo's seed history parses under the schema with >= 2 runs."""
        here = os.path.dirname(os.path.abspath(__file__))
        path = os.path.join(
            here, "..", "benchmarks", "output", "BENCH_history.ndjson"
        )
        records = bench_track.load_history(path)
        assert len(records) >= 2


# -- dashboard renderers -------------------------------------------------------


class TestDash:
    def test_parse_prometheus_values_and_labels(self):
        text = (
            "# TYPE x counter\n"
            "x 4.0\n"
            'span_seconds_total{path="a/b"} 1.5\n'
            'h_bucket{le="+Inf"} 7\n'
            "y +Inf\n"
        )
        samples = parse_prometheus(text)
        by_name = {s.name: s for s in samples}
        assert by_name["x"].value == 4.0
        assert by_name["span_seconds_total"].label("path") == "a/b"
        assert by_name["h_bucket"].label("le") == "+Inf"
        assert by_name["h_bucket"].value == 7.0
        assert by_name["y"].value == float("inf")

    def test_span_bars_orders_by_seconds(self):
        samples = parse_prometheus(
            'span_seconds_total{path="slow"} 2.0\n'
            'span_seconds_total{path="fast"} 0.5\n'
        )
        assert [p for p, _ in span_bars(samples)] == ["slow", "fast"]

    def test_render_span_tree_connects_roots(self):
        spans = [
            {"path": ["job", "campaign", "trial"], "count": 4, "seconds": 2.0},
            {"path": ["job"], "count": 1, "seconds": 3.0},
        ]
        text = render_span_tree(spans, trace_id="abc123")
        lines = text.splitlines()
        assert lines[0] == "trace abc123"
        assert "job" in lines[1]
        assert "└─ campaign" in text  # synthesized intermediate node
        assert "└─ trial" in text
        assert "4×" in text

    def test_render_dashboard_frame(self):
        state = DashState(
            url="http://x",
            status="ok",
            jobs=[{
                "id": "j1", "state": "running", "trials_done": 3,
                "trials_total": 10, "cache_hits": 1,
            }],
            trials_per_s=2.5,
            phase_seconds=[("job/campaign", 1.25)],
        )
        frame = ansi_strip(render_dashboard(state))
        assert "repro top" in frame
        assert "j1" in frame and "3/10" in frame
        assert "2.5 trials/s" in frame
        assert "job/campaign" in frame
        colourless = render_dashboard(state, color=False)
        assert "\x1b[" not in colourless
