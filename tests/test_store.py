"""Unit tests for the content-addressed result store (repro.store)."""

from __future__ import annotations

import json
import math
import os
import pathlib
import sys
import textwrap
from dataclasses import dataclass

import pytest

from repro.experiments.common import PaperTrial
from repro.store import (
    CampaignCheckpoint,
    ResultStore,
    campaign_key,
    canonical_bytes,
    canonical_json,
    code_fingerprint,
    digest,
    sha256_file,
    trial_config_of,
    trial_key,
)
from repro.store.fingerprint import FINGERPRINT_PACKAGES


# -- canonical JSON -----------------------------------------------------------


class TestCanonicalJson:
    def test_key_order_is_irrelevant(self):
        a = {"b": 1, "a": {"y": 2, "x": 3}}
        b = {"a": {"x": 3, "y": 2}, "b": 1}
        assert canonical_json(a) == canonical_json(b)
        assert digest(a) == digest(b)

    def test_compact_separators_no_whitespace(self):
        assert canonical_json({"a": [1, 2]}) == '{"a":[1,2]}'

    def test_floats_round_trip_exactly(self):
        values = [0.1, 1 / 3, 1e-308, 123456.789, -0.0, 2.0]
        text = canonical_json(values)
        assert json.loads(text) == values
        # bit-exact, not just ==
        for original, loaded in zip(values, json.loads(text)):
            assert math.copysign(1.0, original) == math.copysign(1.0, loaded)
            assert original.hex() == loaded.hex()

    def test_nan_and_infinity_rejected(self):
        for poison in (float("nan"), float("inf"), float("-inf")):
            with pytest.raises(ValueError):
                canonical_json({"x": poison})

    def test_tuple_serializes_like_list(self):
        assert canonical_json((1, 2, "a")) == canonical_json([1, 2, "a"])
        assert digest({"p": (1, 2)}) == digest({"p": [1, 2]})

    def test_dataclass_serializes_as_object(self):
        trial = PaperTrial(4.0, 100)
        assert json.loads(canonical_json(trial)) == {
            "tag_range": 4.0,
            "n_tags": 100,
            "protocols": ["sicp", "gmle_ccm", "trp_ccm"],
            "engine": "auto",
        }

    def test_path_serializes_as_string(self):
        assert canonical_json(pathlib.PurePosixPath("a/b")) == '"a/b"'

    def test_set_rejected(self):
        with pytest.raises(TypeError):
            canonical_json({1, 2})

    def test_unknown_object_rejected(self):
        with pytest.raises(TypeError):
            canonical_json(object())

    def test_digest_is_stable(self):
        # A pinned digest: if this changes, every existing cache key is
        # silently invalidated — bump KEY_SCHEMA instead.
        assert digest({"a": 1.5, "b": [1, 2]}) == (
            "545c159c1248310714b8d6ad270e0be90c383b063604aeb3a677ec4c6755cc4d"
        )

    def test_sha256_file(self, tmp_path):
        path = tmp_path / "blob"
        path.write_bytes(b"hello")
        assert sha256_file(path) == (
            "2cf24dba5fb0a30e26e83b2ac5b9e29e1b161e5c1fa7425e73043362938b9824"
        )

    def test_canonical_bytes_utf8(self):
        assert canonical_bytes({"k": "π"}) == '{"k":"π"}'.encode("utf-8")


# -- code fingerprint ---------------------------------------------------------


class TestCodeFingerprint:
    def test_stable_within_process(self):
        assert code_fingerprint() == code_fingerprint()
        assert len(code_fingerprint()) == 16

    def test_covers_the_simulation_packages(self):
        assert FINGERPRINT_PACKAGES == (
            "repro.core",
            "repro.protocols",
            "repro.net",
            "repro.scenario",
        )

    def test_changes_when_source_changes(self, tmp_path, monkeypatch):
        pkg = tmp_path / "fp_probe_pkg"
        pkg.mkdir()
        (pkg / "__init__.py").write_text("X = 1\n")
        monkeypatch.syspath_prepend(str(tmp_path))
        before = code_fingerprint(("fp_probe_pkg",))
        code_fingerprint.cache_clear()
        (pkg / "__init__.py").write_text("X = 2\n")
        after = code_fingerprint(("fp_probe_pkg",))
        code_fingerprint.cache_clear()
        assert before != after

    def test_changes_when_file_added(self, tmp_path, monkeypatch):
        pkg = tmp_path / "fp_probe_pkg2"
        pkg.mkdir()
        (pkg / "__init__.py").write_text("X = 1\n")
        monkeypatch.syspath_prepend(str(tmp_path))
        before = code_fingerprint(("fp_probe_pkg2",))
        code_fingerprint.cache_clear()
        (pkg / "extra.py").write_text("Y = 1\n")
        after = code_fingerprint(("fp_probe_pkg2",))
        code_fingerprint.cache_clear()
        assert before != after

    def test_covers_channel_rng_contract(self, tmp_path, monkeypatch):
        """Bumping the channel RNG-draw contract version must invalidate
        every cached trial key, even with no fingerprinted source edit —
        pre-contract caches were produced under a different stream."""
        import repro.net.channel as channel_mod

        pkg = tmp_path / "fp_probe_pkg3"
        pkg.mkdir()
        (pkg / "__init__.py").write_text("X = 1\n")
        monkeypatch.syspath_prepend(str(tmp_path))
        before = code_fingerprint(("fp_probe_pkg3",))
        code_fingerprint.cache_clear()
        monkeypatch.setattr(
            channel_mod, "CHANNEL_RNG_CONTRACT", "repro-channel-rng-v2"
        )
        after = code_fingerprint(("fp_probe_pkg3",))
        code_fingerprint.cache_clear()
        assert before != after


# -- trial configs and keys ---------------------------------------------------


@dataclass(frozen=True)
class DescribedTrial:
    """A trial with an explicit cache_config (overrides dataclass path)."""

    scale: float = 1.0

    def cache_config(self):
        return {"params": {"scale": self.scale}}

    def __call__(self, k, seed):  # pragma: no cover - never run here
        return {"v": self.scale}


class TestTrialKeys:
    def test_paper_trial_is_describable(self):
        config = trial_config_of(PaperTrial(6.0, 500, engine="packed"))
        assert config["type"] == "repro.experiments.common.PaperTrial"
        assert config["params"]["tag_range"] == 6.0
        assert config["params"]["engine"] == "packed"

    def test_cache_config_hook_wins(self):
        config = trial_config_of(DescribedTrial(2.0))
        assert config["params"] == {"scale": 2.0}
        assert config["type"].endswith("DescribedTrial")

    def test_closures_are_not_describable(self):
        assert trial_config_of(lambda k, s: {"v": 1.0}) is None

        def plain(k, s):
            return {"v": 1.0}

        assert trial_config_of(plain) is None

    def test_every_key_component_moves_the_key(self):
        config = trial_config_of(PaperTrial(6.0, 500))
        base = trial_key(config, 0, 123, "auto", "f" * 16)
        other_config = trial_config_of(PaperTrial(8.0, 500))
        assert trial_key(other_config, 0, 123, "auto", "f" * 16) != base
        assert trial_key(config, 1, 123, "auto", "f" * 16) != base
        assert trial_key(config, 0, 124, "auto", "f" * 16) != base
        assert trial_key(config, 0, 123, "packed", "f" * 16) != base
        assert trial_key(config, 0, 123, "auto", "e" * 16) != base
        assert trial_key(config, 0, 123, "auto", "f" * 16) == base


# -- the store ----------------------------------------------------------------


def _put_one(store, seed=11, metrics=None, trial=None, index=0, fmt="bin"):
    trial = trial or PaperTrial(4.0, 60)
    config = trial_config_of(trial)
    key = trial_key(config, index, seed, "auto", code_fingerprint())
    fields = {
        "schema": "repro-trial-key-v1",
        "trial": config,
        "trial_index": index,
        "seed": seed,
        "engine": "auto",
        "code_fingerprint": code_fingerprint(),
    }
    store.put(
        key, fields, metrics or {"x": 0.1, "y": 2.0},
        {"created_utc": "2026-01-01T00:00:00Z"}, fmt=fmt,
    )
    return key


class TestResultStore:
    def test_put_get_round_trip_is_exact(self, tmp_path):
        store = ResultStore(tmp_path)
        metrics = {"x": 1 / 3, "y": 1e-300, "z": 42.0}
        key = _put_one(store, metrics=metrics)
        loaded = store.get(key)
        assert loaded == metrics
        for name in metrics:
            assert loaded[name].hex() == metrics[name].hex()

    def test_missing_key_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.get("ab" * 32) is None

    def test_put_is_idempotent(self, tmp_path):
        store = ResultStore(tmp_path)
        key = _put_one(store)
        path = store.path_for(key)
        before = path.read_bytes()
        _put_one(store)
        assert path.read_bytes() == before
        assert store.stats().n_entries == 1

    def test_corrupt_record_reads_as_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        key = _put_one(store)
        store.path_for(key).write_text("{not json", encoding="utf-8")
        assert store.get(key) is None

    def test_tampered_key_fields_read_as_miss(self, tmp_path):
        from repro.store.binary import (
            RECORD_TYPE_TRIAL,
            encode_record,
            read_record_path,
        )

        store = ResultStore(tmp_path)
        key = _put_one(store)
        path = store.path_for(key)
        record, _ = read_record_path(path)
        record["key_fields"]["seed"] = 999  # key no longer matches fields
        path.write_bytes(encode_record(record, RECORD_TYPE_TRIAL))
        assert store.get(key) is None

    def test_tampered_legacy_json_reads_as_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        key = _put_one(store, fmt="json")
        path = store.path_for(key, "json")
        record = json.loads(path.read_text(encoding="utf-8"))
        record["key_fields"]["seed"] = 999
        path.write_text(json.dumps(record), encoding="utf-8")
        assert store.get(key) is None

    def test_entries_and_stats(self, tmp_path):
        store = ResultStore(tmp_path)
        keys = {_put_one(store, seed=s) for s in (1, 2, 3)}
        listed = list(store.entries())
        assert {e.key for e in listed} == keys
        stats = store.stats()
        assert stats.n_entries == 3
        assert stats.total_bytes == sum(e.size_bytes for e in listed)
        assert stats.by_trial_type == {
            "repro.experiments.common.PaperTrial": 3
        }
        assert stats.oldest_utc == "2026-01-01T00:00:00Z"

    def test_gc_by_age(self, tmp_path):
        store = ResultStore(tmp_path)
        old_key = _put_one(store, seed=1)
        new_key = _put_one(store, seed=2)
        old_path = store.path_for(old_key)
        stale = os.path.getmtime(old_path) - 10_000
        os.utime(old_path, (stale, stale))
        outcome = store.gc(older_than_s=5_000)
        assert outcome["removed"] == 1
        assert store.get(old_key) is None
        assert store.get(new_key) is not None

    def test_gc_by_size_evicts_oldest_first(self, tmp_path):
        store = ResultStore(tmp_path)
        first = _put_one(store, seed=1)
        second = _put_one(store, seed=2)
        first_path = store.path_for(first)
        older = os.path.getmtime(first_path) - 100
        os.utime(first_path, (older, older))
        keep_bytes = store.path_for(second).stat().st_size
        outcome = store.gc(max_size_bytes=keep_bytes)
        assert outcome["removed"] == 1
        assert store.get(first) is None
        assert store.get(second) is not None

    def test_gc_without_criteria_removes_nothing(self, tmp_path):
        store = ResultStore(tmp_path)
        _put_one(store)
        assert store.gc() == {"removed": 0, "freed_bytes": 0, "kept": 1}


class TestVerify:
    def test_verify_passes_on_honest_entries(self, tmp_path):
        store = ResultStore(tmp_path)
        trial = PaperTrial(4.0, 60)
        metrics = trial(0, 11)
        _put_one(store, seed=11, metrics=dict(metrics), trial=trial)
        outcomes = store.verify()
        assert len(outcomes) == 1
        assert outcomes[0].ok, outcomes[0].reason

    def test_verify_catches_tampered_metrics(self, tmp_path):
        store = ResultStore(tmp_path)
        trial = PaperTrial(4.0, 60)
        metrics = dict(trial(0, 11))
        metrics["slots_sicp_fake"] = 1.0  # not what the trial computes
        key = _put_one(store, seed=11, metrics=metrics, trial=trial)
        # rewrite the record so the key matches the tampered fields
        # (i.e. an honest key over dishonest metrics)
        [outcome] = store.verify()
        assert outcome.key == key
        assert not outcome.ok
        assert "differ" in outcome.reason

    def test_verify_reports_unreconstructable_trials(self, tmp_path):
        store = ResultStore(tmp_path)
        config = {"type": "no.such.module.Trial", "params": {}}
        key = trial_key(config, 0, 1, None, "0" * 16)
        store.put(
            key,
            {
                "schema": "repro-trial-key-v1",
                "trial": config,
                "trial_index": 0,
                "seed": 1,
                "engine": None,
                "code_fingerprint": "0" * 16,
            },
            {"x": 1.0},
        )
        [outcome] = store.verify()
        assert not outcome.ok
        assert "cannot rebuild" in outcome.reason

    def test_verify_sampling_is_deterministic(self, tmp_path):
        store = ResultStore(tmp_path)
        trial = PaperTrial(4.0, 60)
        for seed in (1, 2, 3, 4):
            _put_one(store, seed=seed, metrics=dict(trial(0, seed)), trial=trial)
        first = [o.key for o in store.verify(sample=2, seed=7)]
        second = [o.key for o in store.verify(sample=2, seed=7)]
        assert first == second
        assert len(first) == 2


# -- campaign checkpoints -----------------------------------------------------


class TestCampaignCheckpoint:
    def test_round_trip(self, tmp_path):
        key = campaign_key({"type": "T", "params": {}}, 4, 0, None, "0" * 16)
        ckpt = CampaignCheckpoint(tmp_path, key)
        ckpt.begin({"n_trials": 4})
        ckpt.record_trial(0, "k0", ok=True, cached=False)
        ckpt.record_trial(1, "k1", ok=False, cached=False)
        ckpt.close()
        state = CampaignCheckpoint(tmp_path, key).load()
        assert state.done == {0: "k0"}  # failures are not "done"
        assert not state.completed

    def test_fresh_begin_truncates_resume_appends(self, tmp_path):
        key = "c" * 64
        ckpt = CampaignCheckpoint(tmp_path, key)
        ckpt.begin({})
        ckpt.record_trial(0, "k0", ok=True, cached=False)
        ckpt.close()
        resumed = CampaignCheckpoint(tmp_path, key)
        prior = resumed.begin({}, resume=True)
        assert prior.n_done == 1
        resumed.record_trial(1, "k1", ok=True, cached=False)
        resumed.complete("digest", 1.0)
        resumed.close()
        state = CampaignCheckpoint(tmp_path, key).load()
        assert state.done == {0: "k0", 1: "k1"}
        assert state.completed
        assert state.aggregates_digest == "digest"
        fresh = CampaignCheckpoint(tmp_path, key)
        assert fresh.begin({}).n_done == 0  # truncating start
        fresh.close()
        assert CampaignCheckpoint(tmp_path, key).load().done == {}

    def test_torn_final_line_is_tolerated(self, tmp_path):
        key = "d" * 64
        ckpt = CampaignCheckpoint(tmp_path, key, codec="json")
        ckpt.begin({})
        ckpt.record_trial(0, "k0", ok=True, cached=False)
        ckpt.close()
        with open(ckpt.path, "a", encoding="utf-8") as fh:
            fh.write('{"kind":"trial","trial_index":1,"key":"k1","o')  # SIGKILL
        state = CampaignCheckpoint(tmp_path, key, codec="json").load()
        assert state.done == {0: "k0"}

    def test_torn_binary_frame_is_tolerated(self, tmp_path):
        key = "d" * 64
        ckpt = CampaignCheckpoint(tmp_path, key)
        ckpt.begin({})
        ckpt.record_trial(0, "k0", ok=True, cached=False)
        ckpt.close()
        assert ckpt.path.suffix == ".binj"  # binary is the default codec
        with open(ckpt.path, "ab") as fh:
            fh.write(b"\xff\x00\x00\x00partial-frame")  # SIGKILL mid-write
        state = CampaignCheckpoint(tmp_path, key).load()
        assert state.done == {0: "k0"}
        # resuming truncates the torn tail, then appends readable frames
        resumed = CampaignCheckpoint(tmp_path, key)
        prior = resumed.begin({}, resume=True)
        assert prior.n_done == 1
        resumed.record_trial(1, "k1", ok=True, cached=False)
        resumed.close()
        assert CampaignCheckpoint(tmp_path, key).load().done == {
            0: "k0", 1: "k1",
        }

    def test_legacy_ndjson_journal_resumes_under_binary_codec(self, tmp_path):
        key = "f" * 64
        legacy = CampaignCheckpoint(tmp_path, key, codec="json")
        legacy.begin({"n_trials": 3})
        legacy.record_trial(0, "k0", ok=True, cached=False)
        legacy.close()
        ckpt = CampaignCheckpoint(tmp_path, key)  # binary default
        prior = ckpt.begin({"n_trials": 3}, resume=True)
        assert prior.done == {0: "k0"}  # read straight from the .ndjson
        ckpt.record_trial(1, "k1", ok=True, cached=False)
        ckpt.close()
        merged = CampaignCheckpoint(tmp_path, key).load()
        assert merged.done == {0: "k0", 1: "k1"}

    def test_record_before_begin_raises(self, tmp_path):
        ckpt = CampaignCheckpoint(tmp_path, "e" * 64)
        with pytest.raises(RuntimeError):
            ckpt.record_trial(0, "k", ok=True, cached=False)


# -- the obs.manifest satellites ---------------------------------------------


class TestManifestSatellites:
    def test_manifest_digest_ignores_dict_order(self):
        from repro.obs import RunManifest

        a = RunManifest(seed=1, config={"x": 1, "y": 2.5})
        b = RunManifest(seed=1, config={"y": 2.5, "x": 1})
        assert a.digest() == b.digest()

    def test_write_alongside_records_artifact_hash(self, tmp_path):
        from repro.obs import RunManifest, write_manifest_alongside

        artifact = tmp_path / "out.json"
        artifact.write_text('{"v": 1}', encoding="utf-8")
        path = write_manifest_alongside(artifact, seed=9)
        loaded = RunManifest.from_json(path.read_text(encoding="utf-8"))
        assert loaded.artifact_sha256 == sha256_file(artifact)

    def test_rewrite_same_artifact_overwrites_silently(self, tmp_path, recwarn):
        from repro.obs import write_manifest_alongside

        artifact = tmp_path / "out.json"
        artifact.write_text('{"v": 1}', encoding="utf-8")
        write_manifest_alongside(artifact, seed=1)
        write_manifest_alongside(artifact, seed=2)
        assert not [w for w in recwarn.list if w.category is UserWarning]
        assert sorted(p.name for p in tmp_path.iterdir()) == [
            "out.json",
            "out.manifest.json",
        ]

    def test_changed_artifact_warns_and_preserves_old_manifest(self, tmp_path):
        from repro.obs import RunManifest, write_manifest_alongside

        artifact = tmp_path / "out.json"
        artifact.write_text('{"v": 1}', encoding="utf-8")
        write_manifest_alongside(artifact, seed=1)
        artifact.write_text('{"v": 2}', encoding="utf-8")
        with pytest.warns(UserWarning, match="different artifact content"):
            write_manifest_alongside(artifact, seed=2)
        names = sorted(p.name for p in tmp_path.iterdir())
        assert names == [
            "out.json",
            "out.manifest.1.json",
            "out.manifest.json",
        ]
        preserved = RunManifest.from_json(
            (tmp_path / "out.manifest.1.json").read_text(encoding="utf-8")
        )
        assert preserved.seed == 1
        current = RunManifest.from_json(
            (tmp_path / "out.manifest.json").read_text(encoding="utf-8")
        )
        assert current.seed == 2
        assert current.artifact_sha256 == sha256_file(artifact)

    def test_versioned_slots_do_not_collide(self, tmp_path):
        from repro.obs import write_manifest_alongside

        artifact = tmp_path / "out.json"
        for round_no in range(3):
            artifact.write_text(f'{{"v": {round_no}}}', encoding="utf-8")
            if round_no:
                with pytest.warns(UserWarning):
                    write_manifest_alongside(artifact, seed=round_no)
            else:
                write_manifest_alongside(artifact, seed=round_no)
        names = sorted(p.name for p in tmp_path.iterdir())
        assert names == [
            "out.json",
            "out.manifest.1.json",
            "out.manifest.2.json",
            "out.manifest.json",
        ]


# -- fingerprint isolation probe ---------------------------------------------


def test_fingerprint_subprocess_agrees(tmp_path):
    """Two processes over the same tree compute the same fingerprint."""
    import subprocess

    script = textwrap.dedent(
        """
        from repro.store import code_fingerprint
        print(code_fingerprint())
        """
    )
    env = dict(os.environ)
    src = str(pathlib.Path(__file__).resolve().parents[1] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    out = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    assert out.stdout.strip() == code_fingerprint()


# -- the advisory maintenance lock --------------------------------------------


class TestStoreLock:
    """StoreLock guards maintenance (gc/verify) across processes.

    flock conflicts are per open-file-description, so two lock objects
    in one process genuinely contend — no subprocess needed.
    """

    def test_shared_locks_coexist(self, tmp_path):
        store = ResultStore(tmp_path)
        with store.lock().shared(timeout_s=1):
            with store.lock().shared(timeout_s=1):
                pass  # two readers at once is fine

    def test_exclusive_excludes_exclusive(self, tmp_path):
        store = ResultStore(tmp_path)
        with store.lock().exclusive(timeout_s=1):
            with pytest.raises(TimeoutError):
                with store.lock().exclusive(timeout_s=0.2):
                    pass

    def test_exclusive_excludes_shared(self, tmp_path):
        store = ResultStore(tmp_path)
        with store.lock().exclusive(timeout_s=1):
            with pytest.raises(TimeoutError):
                with store.lock().shared(timeout_s=0.2):
                    pass

    def test_shared_excludes_exclusive(self, tmp_path):
        store = ResultStore(tmp_path)
        with store.lock().shared(timeout_s=1):
            with pytest.raises(TimeoutError):
                with store.lock().exclusive(timeout_s=0.2):
                    pass

    def test_lock_released_on_exit(self, tmp_path):
        store = ResultStore(tmp_path)
        with store.lock().exclusive(timeout_s=1):
            pass
        with store.lock().exclusive(timeout_s=0.2):
            pass  # reacquire immediately after release

    def test_gc_serializes_behind_held_lock(self, tmp_path):
        """gc takes the exclusive lock, so a held reader delays it."""
        import threading
        import time as _time

        store = ResultStore(tmp_path)
        _put_one(store)
        started = threading.Event()
        release = threading.Event()
        observed = {}

        def hold_shared():
            with store.lock().shared(timeout_s=1):
                started.set()
                release.wait(5)

        holder = threading.Thread(target=hold_shared)
        holder.start()
        assert started.wait(5)
        t0 = _time.monotonic()
        gc_thread = threading.Thread(
            target=lambda: observed.update(store.gc(older_than_s=0.0))
        )
        gc_thread.start()
        _time.sleep(0.2)
        assert not observed  # gc is blocked behind the shared holder
        release.set()
        holder.join(5)
        gc_thread.join(5)
        assert observed["removed"] == 1
        assert _time.monotonic() - t0 >= 0.2
