"""Tests for repro.sim.trace — session event tracing."""


from repro.core.session import CCMConfig, run_session
from repro.protocols.transport import frame_picks
from repro.sim.trace import SessionTracer, TraceEvent


class TestTracerBasics:
    def test_emit_and_query(self):
        tracer = SessionTracer()
        tracer.emit("frame", 1, transmitters=5)
        tracer.emit("frame", 2, transmitters=3)
        tracer.emit("checking", 2, reader_heard=False)
        assert len(tracer.of_kind("frame")) == 2
        assert tracer.of_kind("checking")[0].data["reader_heard"] is False

    def test_rounds(self):
        tracer = SessionTracer()
        assert tracer.rounds() == 0
        tracer.emit("round_start", 1)
        tracer.emit("round_start", 2)
        assert tracer.rounds() == 2

    def test_first_delivery_round(self):
        tracer = SessionTracer()
        tracer.emit("frame", 1, bits_new_at_reader=0)
        tracer.emit("frame", 2, bits_new_at_reader=4)
        assert tracer.first_delivery_round() == 2

    def test_first_delivery_none(self):
        tracer = SessionTracer()
        tracer.emit("frame", 1, bits_new_at_reader=0)
        assert tracer.first_delivery_round() is None

    def test_event_json(self):
        event = TraceEvent("frame", 3, {"transmitters": 7})
        assert '"kind": "frame"' in event.to_json()
        assert '"round": 3' in event.to_json()


class TestNdjsonRoundtrip:
    def test_roundtrip(self):
        tracer = SessionTracer()
        tracer.emit("round_start", 1)
        tracer.emit("frame", 1, transmitters=2, bits_new_at_reader=1)
        text = tracer.to_ndjson()
        back = SessionTracer.from_ndjson(text)
        assert len(back.events) == 2
        assert back.of_kind("frame")[0].data["transmitters"] == 2

    def test_empty_tracer(self):
        assert SessionTracer().to_ndjson() == ""

    def test_file_export(self, tmp_path):
        tracer = SessionTracer()
        tracer.emit("session_end", 1, rounds=1, clean=True, busy_slots=0)
        path = tmp_path / "trace.ndjson"
        tracer.to_ndjson(path)
        assert "session_end" in path.read_text()


class TestSessionIntegration:
    def test_traced_session_chain(self, line_network):
        tracer = SessionTracer()
        picks = [-1, -1, -1, -1, 0]  # tier-5 tag only
        result = run_session(
            line_network, picks, config=CCMConfig(frame_size=8), tracer=tracer
        )
        assert tracer.rounds() == result.rounds == 5
        # The lone bit arrives in round 5.
        assert tracer.first_delivery_round() == 5
        ends = tracer.of_kind("session_end")
        assert ends[-1].data["clean"] is True
        assert ends[-1].data["busy_slots"] == 1

    def test_summary_renders(self, star_network):
        tracer = SessionTracer()
        run_session(
            star_network, [0, 1, 2, 3, 4], config=CCMConfig(frame_size=8),
            tracer=tracer,
        )
        text = tracer.summary()
        assert "round" in text
        assert "session:" in text

    def test_indicator_events_track_silencing(self, star_network):
        tracer = SessionTracer()
        run_session(
            star_network, [0, 1, 2, 3, 4], config=CCMConfig(frame_size=8),
            tracer=tracer,
        )
        silenced = [
            e.data["silenced_total"] for e in tracer.of_kind("indicator")
        ]
        assert silenced == sorted(silenced)  # monotone accumulation
        assert silenced[-1] == 5

    def test_untraced_session_identical(self, small_network):
        picks = frame_picks(small_network.tag_ids, 64, 1.0, seed=1)
        a = run_session(small_network, picks, config=CCMConfig(frame_size=64))
        b = run_session(
            small_network, picks, config=CCMConfig(frame_size=64),
            tracer=SessionTracer(),
        )
        assert a.bitmap == b.bitmap
        assert a.total_slots == b.total_slots
