"""Tests for repro.sim.trace — session event tracing."""


import pytest

from repro.core.session import CCMConfig, run_session
from repro.protocols.transport import frame_picks
from repro.sim.trace import SessionTracer, TraceEvent


class TestTracerBasics:
    def test_emit_and_query(self):
        tracer = SessionTracer()
        tracer.emit("frame", 1, transmitters=5)
        tracer.emit("frame", 2, transmitters=3)
        tracer.emit("checking", 2, reader_heard=False)
        assert len(tracer.of_kind("frame")) == 2
        assert tracer.of_kind("checking")[0].data["reader_heard"] is False

    def test_rounds(self):
        tracer = SessionTracer()
        assert tracer.rounds() == 0
        tracer.emit("round_start", 1)
        tracer.emit("round_start", 2)
        assert tracer.rounds() == 2

    def test_first_delivery_round(self):
        tracer = SessionTracer()
        tracer.emit("frame", 1, bits_new_at_reader=0)
        tracer.emit("frame", 2, bits_new_at_reader=4)
        assert tracer.first_delivery_round() == 2

    def test_first_delivery_none(self):
        tracer = SessionTracer()
        tracer.emit("frame", 1, bits_new_at_reader=0)
        assert tracer.first_delivery_round() is None

    def test_event_json(self):
        event = TraceEvent("frame", 3, {"transmitters": 7})
        assert '"kind": "frame"' in event.to_json()
        assert '"round": 3' in event.to_json()

    def test_reserved_payload_keys_rejected(self):
        with pytest.raises(ValueError, match="envelope"):
            TraceEvent("frame", 1, {"kind": "smuggled"})
        with pytest.raises(ValueError, match="envelope"):
            TraceEvent("frame", 1, {"round": 9})
        tracer = SessionTracer()
        with pytest.raises(ValueError, match="envelope"):
            tracer.emit("frame", 1, round=9)

    def test_shared_bus_fans_out(self):
        from repro.obs import EventBus

        bus = EventBus()
        seen = []
        bus.subscribe(lambda kind, r, data: seen.append((kind, r)))
        tracer = SessionTracer(bus=bus)
        tracer.emit("frame", 2, transmitters=1)
        assert seen == [("frame", 2)]
        assert tracer.of_kind("frame")[0].round_index == 2


class TestNdjsonRoundtrip:
    def test_roundtrip(self):
        tracer = SessionTracer()
        tracer.emit("round_start", 1)
        tracer.emit("frame", 1, transmitters=2, bits_new_at_reader=1)
        text = tracer.to_ndjson()
        back = SessionTracer.from_ndjson(text)
        assert len(back.events) == 2
        assert back.of_kind("frame")[0].data["transmitters"] == 2

    def test_empty_tracer(self):
        assert SessionTracer().to_ndjson() == ""

    def test_file_export(self, tmp_path):
        tracer = SessionTracer()
        tracer.emit("session_end", 1, rounds=1, clean=True, busy_slots=0)
        path = tmp_path / "trace.ndjson"
        tracer.to_ndjson(path)
        assert "session_end" in path.read_text()


class TestSessionIntegration:
    def test_traced_session_chain(self, line_network):
        tracer = SessionTracer()
        picks = [-1, -1, -1, -1, 0]  # tier-5 tag only
        result = run_session(
            line_network, picks, config=CCMConfig(frame_size=8), tracer=tracer
        )
        assert tracer.rounds() == result.rounds == 5
        # The lone bit arrives in round 5.
        assert tracer.first_delivery_round() == 5
        ends = tracer.of_kind("session_end")
        assert ends[-1].data["clean"] is True
        assert ends[-1].data["busy_slots"] == 1

    def test_summary_renders(self, star_network):
        tracer = SessionTracer()
        run_session(
            star_network, [0, 1, 2, 3, 4], config=CCMConfig(frame_size=8),
            tracer=tracer,
        )
        text = tracer.summary()
        assert "round" in text
        assert "session:" in text

    def test_summary_includes_checking_only_rounds(self):
        # The final silent checking frame has no frame event; its round
        # must still appear in the digest.
        tracer = SessionTracer()
        tracer.emit("round_start", 1)
        tracer.emit("frame", 1, transmitters=3, bits_new_at_reader=2)
        tracer.emit("checking", 1, slots_executed=2, reader_heard=True)
        tracer.emit("checking", 2, slots_executed=4, reader_heard=False)
        lines = tracer.summary().splitlines()
        round_2 = [ln for ln in lines if ln.strip().startswith("2")]
        assert round_2, "round 2 (checking only) missing from summary"
        assert "4" in round_2[0] and "False" in round_2[0]

    def test_indicator_events_track_silencing(self, star_network):
        tracer = SessionTracer()
        run_session(
            star_network, [0, 1, 2, 3, 4], config=CCMConfig(frame_size=8),
            tracer=tracer,
        )
        silenced = [
            e.data["silenced_total"] for e in tracer.of_kind("indicator")
        ]
        assert silenced == sorted(silenced)  # monotone accumulation
        assert silenced[-1] == 5

    def test_untraced_session_identical(self, small_network):
        picks = frame_picks(small_network.tag_ids, 64, 1.0, seed=1)
        a = run_session(small_network, picks, config=CCMConfig(frame_size=64))
        b = run_session(
            small_network, picks, config=CCMConfig(frame_size=64),
            tracer=SessionTracer(),
        )
        assert a.bitmap == b.bitmap
        assert a.total_slots == b.total_slots
