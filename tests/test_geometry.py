"""Unit tests for repro.net.geometry — deployments and spatial index."""

import math

import numpy as np
import pytest

from repro.net.geometry import (
    GridIndex,
    Point,
    clustered_disk,
    density_for,
    disk_area,
    grid_deployment,
    pairwise_distance,
    uniform_annulus,
    uniform_disk,
)


class TestPoint:
    def test_distance(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == pytest.approx(5.0)

    def test_as_array(self):
        arr = Point(1.5, -2.0).as_array()
        assert arr.tolist() == [1.5, -2.0]


class TestScalars:
    def test_disk_area(self):
        assert disk_area(30.0) == pytest.approx(math.pi * 900)

    def test_density_matches_paper(self):
        # Sec. VI-A: rho = 10,000 / (pi * 30^2) ~ 3.54
        assert density_for(10_000, 30.0) == pytest.approx(3.5368, abs=1e-3)

    def test_density_invalid_radius(self):
        with pytest.raises(ValueError):
            density_for(10, 0.0)

    def test_pairwise_distance(self):
        pos = np.array([[0.0, 0.0], [3.0, 4.0]])
        d = pairwise_distance(pos, Point(0.0, 0.0))
        assert d.tolist() == [0.0, 5.0]


class TestUniformDisk:
    def test_all_inside(self):
        pos = uniform_disk(500, 10.0, seed=1)
        assert np.all(np.hypot(pos[:, 0], pos[:, 1]) <= 10.0 + 1e-9)

    def test_shape(self):
        assert uniform_disk(7, 1.0, seed=0).shape == (7, 2)

    def test_zero_tags(self):
        assert uniform_disk(0, 1.0, seed=0).shape == (0, 2)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            uniform_disk(-1, 1.0)

    def test_bad_radius_rejected(self):
        with pytest.raises(ValueError):
            uniform_disk(5, 0.0)

    def test_seed_reproducible(self):
        a = uniform_disk(100, 5.0, seed=9)
        b = uniform_disk(100, 5.0, seed=9)
        assert np.array_equal(a, b)

    def test_uniform_in_area(self):
        """Half the points should fall inside radius R/sqrt(2)."""
        pos = uniform_disk(20_000, 10.0, seed=4)
        inner = np.hypot(pos[:, 0], pos[:, 1]) <= 10.0 / math.sqrt(2)
        assert abs(inner.mean() - 0.5) < 0.02

    def test_center_offset(self):
        pos = uniform_disk(200, 1.0, center=Point(100.0, -50.0), seed=2)
        d = pairwise_distance(pos, Point(100.0, -50.0))
        assert np.all(d <= 1.0 + 1e-9)


class TestAnnulus:
    def test_radial_bounds(self):
        pos = uniform_annulus(500, 5.0, 10.0, seed=3)
        d = np.hypot(pos[:, 0], pos[:, 1])
        assert np.all(d >= 5.0 - 1e-9)
        assert np.all(d <= 10.0 + 1e-9)

    def test_invalid_radii(self):
        with pytest.raises(ValueError):
            uniform_annulus(10, 5.0, 5.0)
        with pytest.raises(ValueError):
            uniform_annulus(10, -1.0, 5.0)


class TestClustered:
    def test_inside_disk(self):
        pos = clustered_disk(400, 20.0, n_clusters=5, cluster_sigma=3.0, seed=8)
        assert np.all(np.hypot(pos[:, 0], pos[:, 1]) <= 20.0 + 1e-6)

    def test_clusters_are_tight(self):
        pos = clustered_disk(400, 50.0, n_clusters=2, cluster_sigma=0.5, seed=8)
        # With 2 tight clusters the mean nearest-neighbour distance is tiny
        # compared to the field radius.
        from repro.net.geometry import GridIndex

        index = GridIndex(pos, cell_size=5.0)
        degrees = [index.query_index(i, 5.0).size for i in range(50)]
        assert np.mean(degrees) > 50

    def test_validation(self):
        with pytest.raises(ValueError):
            clustered_disk(10, 5.0, n_clusters=0, cluster_sigma=1.0)
        with pytest.raises(ValueError):
            clustered_disk(10, 5.0, n_clusters=2, cluster_sigma=-1.0)


class TestGrid:
    def test_count_and_spacing(self):
        pos = grid_deployment(3, 4, spacing=2.0)
        assert pos.shape == (12, 2)
        xs = sorted(set(pos[:, 0].tolist()))
        assert xs == pytest.approx([-3.0, -1.0, 1.0, 3.0])

    def test_jitter_bounded(self):
        base = grid_deployment(5, 5, spacing=1.0)
        jittered = grid_deployment(5, 5, spacing=1.0, jitter=0.1, seed=1)
        assert np.max(np.abs(base - jittered)) <= 0.1 + 1e-12

    def test_validation(self):
        with pytest.raises(ValueError):
            grid_deployment(0, 3, spacing=1.0)
        with pytest.raises(ValueError):
            grid_deployment(3, 3, spacing=0.0)


class TestGridIndex:
    def _brute_neighbors(self, pos, i, radius):
        d = np.hypot(pos[:, 0] - pos[i, 0], pos[:, 1] - pos[i, 1])
        out = np.flatnonzero(d <= radius)
        return set(out.tolist()) - {i}

    def test_matches_brute_force(self):
        pos = uniform_disk(300, 20.0, seed=5)
        radius = 3.0
        index = GridIndex(pos, cell_size=radius)
        for i in range(0, 300, 7):
            fast = set(index.query_index(i, radius).tolist())
            assert fast == self._brute_neighbors(pos, i, radius)

    def test_query_point(self):
        pos = np.array([[0.0, 0.0], [1.0, 0.0], [5.0, 0.0]])
        index = GridIndex(pos, cell_size=2.0)
        near = set(index.query_point(Point(0.5, 0.0), 2.0).tolist())
        assert near == {0, 1}

    def test_radius_larger_than_cell_rejected(self):
        index = GridIndex(np.zeros((1, 2)), cell_size=1.0)
        with pytest.raises(ValueError):
            index.query_point(Point(0, 0), 2.0)

    def test_neighbor_lists_symmetric(self):
        pos = uniform_disk(200, 15.0, seed=6)
        index = GridIndex(pos, cell_size=3.0)
        indptr, indices = index.neighbor_lists(3.0)
        neigh = [
            set(indices[indptr[i] : indptr[i + 1]].tolist()) for i in range(200)
        ]
        for i in range(200):
            for j in neigh[i]:
                assert i in neigh[j]

    def test_neighbor_lists_no_self(self):
        pos = uniform_disk(100, 10.0, seed=7)
        index = GridIndex(pos, cell_size=2.0)
        indptr, indices = index.neighbor_lists(2.0)
        for i in range(100):
            assert i not in indices[indptr[i] : indptr[i + 1]]

    def test_bad_positions_shape(self):
        with pytest.raises(ValueError):
            GridIndex(np.zeros((3,)), cell_size=1.0)

    def test_bad_cell_size(self):
        with pytest.raises(ValueError):
            GridIndex(np.zeros((3, 2)), cell_size=0.0)

    def test_negative_coordinates_binned_correctly(self):
        pos = np.array([[-0.5, -0.5], [-0.6, -0.4], [10.0, 10.0]])
        index = GridIndex(pos, cell_size=1.0)
        assert set(index.query_index(0, 1.0).tolist()) == {1}
