"""Tests for repro.protocols.sicp — the ID-collection baseline."""

import numpy as np
import pytest

from repro.net.energy import EnergyLedger, ID_BITS
from repro.protocols.sicp import (
    SICPParams,
    SpanningTree,
    build_tree,
    collect_ids,
    run_sicp,
)


class TestParams:
    def test_defaults_valid(self):
        SICPParams()

    def test_validation(self):
        with pytest.raises(ValueError):
            SICPParams(relay_contention_window=0)
        with pytest.raises(ValueError):
            SICPParams(ack_slots=-1)
        with pytest.raises(ValueError):
            SICPParams(announce_base_window=0)


class TestTreeBuilding:
    def _build(self, network, seed=1):
        rng = np.random.default_rng(seed)
        ledger = EnergyLedger(network.n_tags)
        return build_tree(network, SICPParams(), rng, ledger) + (ledger,)

    def test_line_tree_structure(self, line_network):
        tree, slots, _ = self._build(line_network)
        assert tree.parent.tolist() == [SpanningTree.ROOT, 0, 1, 2, 3]
        assert tree.depth.tolist() == [1, 2, 3, 4, 5]

    def test_star_tree(self, star_network):
        tree, _, _ = self._build(star_network)
        assert (tree.parent[:4] == SpanningTree.ROOT).all()
        assert tree.parent[4] == 0  # only tag 0 is in range of tag 4
        assert tree.depth[4] == 2

    def test_parents_are_strictly_shallower(self, small_network):
        tree, _, _ = self._build(small_network)
        for i in range(small_network.n_tags):
            p = tree.parent[i]
            if p >= 0:
                assert tree.depth[i] == tree.depth[p] + 1

    def test_parents_are_neighbors(self, small_network):
        tree, _, _ = self._build(small_network)
        for i in range(small_network.n_tags):
            p = tree.parent[i]
            if p >= 0:
                assert p in small_network.neighbors(i)

    def test_all_reachable_attached(self, small_network):
        tree, _, _ = self._build(small_network)
        assert np.array_equal(
            tree.attached_mask(), small_network.reachable_mask
        )

    def test_unreachable_stay_unattached(self):
        from repro.net.geometry import Point
        from repro.net.topology import Network, Reader

        positions = np.array([[1.0, 0.0], [50.0, 50.0]])
        reader = Reader(Point(0, 0), 10.0, 1.5)
        net = Network.build(positions, [reader], tag_range=1.0)
        tree, _, _ = self._build(net)
        assert tree.parent[1] == SpanningTree.UNATTACHED

    def test_subtree_sizes(self, line_network):
        tree, _, _ = self._build(line_network)
        assert tree.subtree_sizes().tolist() == [5, 4, 3, 2, 1]

    def test_announce_energy_charged(self, star_network):
        _, _, ledger = self._build(star_network)
        # Every tag announces at least once: >= 96 bits sent each.
        assert np.all(ledger.bits_sent >= ID_BITS)

    def test_phase1_uses_id_slots(self, star_network):
        _, slots, _ = self._build(star_network)
        assert slots.id_slots > 0
        assert slots.short_slots == 0


class TestCollection:
    def _run(self, network, seed=2):
        rng = np.random.default_rng(seed)
        ledger = EnergyLedger(network.n_tags)
        tree, _ = build_tree(network, SICPParams(), rng, ledger)
        ledger2 = EnergyLedger(network.n_tags)
        collected, slots = collect_ids(network, tree, SICPParams(), rng, ledger2)
        return tree, collected, slots, ledger2

    def test_collects_every_reachable_id(self, small_network):
        _, collected, _, _ = self._run(small_network)
        reachable = set(
            int(t)
            for t in small_network.tag_ids[small_network.reachable_mask]
        )
        assert set(collected) == reachable
        assert len(collected) == len(reachable)  # no duplicates

    def test_post_order_children_before_parents(self, line_network):
        tree, collected, _, _ = self._run(line_network)
        # Line IDs are 1..5 root-to-leaf; post-order arrives leaf first.
        assert collected == [5, 4, 3, 2, 1]

    def test_id_slot_count_is_sum_of_depths(self, line_network):
        tree, _, slots, _ = self._run(line_network)
        assert slots.id_slots == int(tree.depth.sum())  # 1+2+3+4+5 = 15

    def test_sent_bits_proportional_to_subtree(self, line_network):
        tree, _, _, ledger = self._run(line_network)
        subtree = tree.subtree_sizes()
        for i in range(5):
            expected = subtree[i] * ID_BITS + (subtree[i] - 1)  # IDs + acks
            assert ledger.bits_sent[i] == pytest.approx(expected)

    def test_everyone_senses_whole_phase(self, line_network):
        _, _, slots, ledger = self._run(line_network)
        assert np.all(ledger.bits_received >= slots.total_slots)


class TestRunSICP:
    def test_end_to_end(self, small_network):
        result = run_sicp(small_network, seed=3)
        assert len(result.collected_ids) == int(
            small_network.reachable_mask.sum()
        )
        assert result.total_slots == (
            result.phase1_slots.total_slots + result.phase2_slots.total_slots
        )

    def test_seed_reproducible(self, small_network):
        a = run_sicp(small_network, seed=4)
        b = run_sicp(small_network, seed=4)
        assert a.total_slots == b.total_slots
        assert a.collected_ids == b.collected_ids

    def test_root_load_exceeds_average(self, dense_network):
        """The SICP pathology the paper highlights: tree roots relay entire
        subtrees, so max sent far exceeds average sent."""
        result = run_sicp(dense_network, seed=5)
        summary = result.ledger.summary()
        assert summary["max_sent"] > 5 * summary["avg_sent"]

    def test_max_depth_close_to_tiers(self, small_network):
        result = run_sicp(small_network, seed=6)
        assert result.tree.max_depth() >= small_network.num_tiers

    def test_cost_decreases_with_range(self):
        from repro.net.topology import PaperDeployment, paper_network

        slots = []
        for r in (3.0, 6.0, 10.0):
            net = paper_network(
                r, n_tags=800, seed=7, deployment=PaperDeployment(n_tags=800)
            )
            slots.append(run_sicp(net, seed=8).total_slots)
        assert slots[0] > slots[1] > slots[2]
