"""Tests for repro.core.engine — the interchangeable session engines.

The contract under test is the strongest one the redesign makes: for any
network, initial masks and config, the bit-packed engine must produce a
*bit-identical* :class:`~repro.core.session.SessionResult` to the big-int
engine under the perfect channel — same bitmap, rounds, slots,
round-by-round stats and per-tag energy ledger, down to float equality
(both engines add the same float64 values in the same order).
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.core.engine import (
    AUTO_ENGINE,
    BigintSessionEngine,
    PackedSessionEngine,
    SessionEngine,
    available_engines,
    bit_transpose,
    get_engine,
    masks_to_words,
    register_engine,
    resolve_engine,
    words_to_int,
)
from repro.core.session import (
    CCMConfig,
    default_checking_frame_length,
    run_session,
)
from repro.net.channel import (
    Channel,
    LossyChannel,
    PerfectChannel,
    or_reduce_segments,
)
from repro.net.geometry import Point, clustered_disk, uniform_annulus, uniform_disk
from repro.net.topology import Network, Reader
from repro.sim.rng import TagHasher


def _build_network(deployment: str, n_tags: int, seed: int) -> Network:
    """A reachable multi-tier network for each supported geometry."""
    if deployment == "disk":
        positions = uniform_disk(n_tags, radius=20.0, seed=seed)
    elif deployment == "annulus":
        positions = uniform_annulus(
            n_tags, inner_radius=6.0, outer_radius=20.0, seed=seed
        )
    elif deployment == "clustered":
        positions = clustered_disk(
            n_tags, radius=20.0, n_clusters=8, cluster_sigma=2.0, seed=seed
        )
    else:  # pragma: no cover - guard against typos in parametrize lists
        raise ValueError(deployment)
    reader = Reader(
        position=Point(0.0, 0.0),
        reader_to_tag_range=25.0,
        tag_to_reader_range=8.0,
    )
    return Network.build(positions, [reader], tag_range=6.0)


def _masks_for(network: Network, frame_size: int, seed: int, multibit: bool):
    """Deterministic per-tag initial masks (one or several slots each)."""
    hasher = TagHasher(seed=seed)
    masks = []
    for tid in network.tag_ids:
        slot = hasher.slot_of(int(tid), frame_size)
        mask = 1 << slot
        if multibit:
            mask |= 1 << hasher.slot_of(int(tid) ^ 0x5A5A, frame_size)
        masks.append(mask)
    return masks


def _assert_results_identical(a, b) -> None:
    assert a.bitmap.size == b.bitmap.size
    assert a.bitmap.bits == b.bitmap.bits
    assert a.rounds == b.rounds
    assert a.slots == b.slots
    assert a.terminated_cleanly == b.terminated_cleanly
    assert a.round_stats == b.round_stats
    np.testing.assert_array_equal(a.ledger.bits_sent, b.ledger.bits_sent)
    np.testing.assert_array_equal(a.ledger.bits_received, b.ledger.bits_received)


class TestPackedPrimitives:
    @pytest.mark.parametrize("frame_size", [1, 5, 63, 64, 65, 128, 200])
    def test_masks_words_roundtrip(self, frame_size):
        rng = np.random.default_rng(frame_size)
        masks = [
            int(rng.integers(0, 2**min(frame_size, 62))) for _ in range(17)
        ] + [0, (1 << frame_size) - 1, 1 << (frame_size - 1)]
        words = masks_to_words(masks, frame_size)
        assert words.shape == (len(masks), (frame_size + 63) // 64)
        assert words.dtype == np.uint64
        assert [words_to_int(row) for row in words] == masks

    def test_or_reduce_matches_bigint_or(self):
        rng = np.random.default_rng(7)
        n, n_words = 50, 3
        rows = rng.integers(0, 2**64, size=(n, n_words), dtype=np.uint64)
        # Random sparse adjacency, including rows with no neighbours.
        degree = rng.integers(0, 6, size=n)
        degree[::7] = 0
        indices = np.concatenate(
            [rng.integers(0, n, size=d) for d in degree]
        ).astype(np.int64)
        indptr = np.concatenate(([0], np.cumsum(degree))).astype(np.int64)
        got = or_reduce_segments(rows, indptr, indices, chunk_words=16)
        expected = np.zeros_like(got)
        for t in range(n):
            for u in indices[indptr[t] : indptr[t + 1]]:
                expected[t] |= rows[u]
        np.testing.assert_array_equal(got, expected)

    @pytest.mark.parametrize(
        "n_rows,n_cols",
        [(1, 1), (5, 1), (64, 64), (100, 130), (3, 200), (400, 512), (130, 100)],
    )
    def test_bit_transpose_matches_unpackbits_oracle(self, n_rows, n_cols):
        rng = np.random.default_rng(n_rows * 1000 + n_cols)
        n_words = (n_cols + 63) // 64
        words = rng.integers(0, 2**64, size=(n_rows, n_words), dtype=np.uint64)
        pad = n_words * 64 - n_cols
        if pad:
            words[:, -1] &= np.uint64((1 << (64 - pad)) - 1)

        got = bit_transpose(words, n_rows, n_cols)
        bits = np.unpackbits(
            words.view(np.uint8), axis=1, bitorder="little", count=n_cols
        )
        padded = np.zeros(
            (n_cols, max(1, (n_rows + 63) // 64) * 64), dtype=np.uint8
        )
        padded[:, :n_rows] = bits.T
        expected = np.packbits(padded, axis=1, bitorder="little").view(
            np.uint64
        )
        np.testing.assert_array_equal(got, expected)
        # Transposing back recovers the original packed matrix.
        np.testing.assert_array_equal(
            bit_transpose(got, n_cols, n_rows), words
        )

    def test_packed_adjacency_matches_csr(self):
        network = _build_network("disk", 60, seed=5)
        adj = network.packed_adjacency()
        assert adj.shape == (60, 1)
        for t in range(network.n_tags):
            expected = 0
            for u in network.neighbors(t):
                expected |= 1 << int(u)
            assert words_to_int(adj[t]) == expected
        # Cached: same object on repeat calls.
        assert network.packed_adjacency() is adj

    def test_or_reduce_row_filter_drops_silent_sources(self):
        rows = np.array([[3], [0], [12]], dtype=np.uint64)
        indptr = np.array([0, 2, 3, 4])
        indices = np.array([1, 2, 0, 1])
        got = or_reduce_segments(
            rows, indptr, indices, row_filter=rows.any(axis=1)
        )
        np.testing.assert_array_equal(
            got, np.array([[12], [3], [0]], dtype=np.uint64)
        )


class TestEngineRegistry:
    def test_available_engines(self):
        assert {"bigint", "packed"} <= set(available_engines())

    def test_get_engine_instances(self):
        assert isinstance(get_engine("bigint"), BigintSessionEngine)
        assert isinstance(get_engine("packed"), PackedSessionEngine)
        assert isinstance(get_engine("packed"), SessionEngine)

    def test_unknown_engine(self):
        with pytest.raises(ValueError, match="unknown session engine"):
            get_engine("quantum")

    def test_auto_resolution(self):
        assert resolve_engine(AUTO_ENGINE, None).name == "packed"
        assert resolve_engine("auto", PerfectChannel()).name == "packed"
        # Lossy channels consume the repro-channel-rng-v1 stream
        # identically on both engines, so auto routes them to packed too.
        assert resolve_engine("auto", LossyChannel(0.1)).name == "packed"
        assert resolve_engine("auto", LossyChannel(0.0)).name == "packed"

    def test_auto_is_conservative_for_subclasses(self):
        class TracingChannel(PerfectChannel):
            pass

        class TracingLossy(LossyChannel):
            pass

        assert resolve_engine("auto", TracingChannel()).name == "bigint"
        assert resolve_engine("auto", TracingLossy(0.2)).name == "bigint"

    def test_register_custom_engine(self):
        class NullEngine:
            name = "null"

            def run(self, network, masks, config, **kwargs):
                raise NotImplementedError

        register_engine("null-test", NullEngine)
        try:
            assert "null-test" in available_engines()
            assert get_engine("null-test").name == "null"
        finally:
            from repro.core.engine import _REGISTRY

            _REGISTRY.pop("null-test", None)

    def test_packed_refuses_bigint_only_channel(self, star_network):
        class BigintOnly(Channel):
            def propagate(self, transmit, indptr, indices, rng=None):
                return PerfectChannel().propagate(
                    transmit, indptr, indices, rng
                )

            def reader_senses(self, transmit, tier1, rng=None):
                return PerfectChannel().reader_senses(transmit, tier1, rng)

        config = CCMConfig(frame_size=8)
        with pytest.raises(ValueError, match="packed"):
            run_session(
                star_network,
                [0, 1, 2, 3, 4],
                config=config,
                channel=BigintOnly(),
                engine="packed",
            )
        # The same channel runs fine on the bigint engine — and auto picks it.
        for engine in ("bigint", "auto"):
            result = run_session(
                star_network,
                [0, 1, 2, 3, 4],
                config=config,
                channel=BigintOnly(),
                engine=engine,
            )
            assert result.bitmap.popcount() == 5


class TestCrossEngineEquivalence:
    """packed ≡ bigint, bit for bit, across the deployment/frame grid."""

    @pytest.mark.parametrize("deployment", ["disk", "annulus", "clustered"])
    @pytest.mark.parametrize(
        "frame_size", [1, 37, 64, 257]
    )  # f < 64, f % 64 != 0, f == 64, multi-word
    @pytest.mark.parametrize("multibit", [False, True])
    def test_grid(self, deployment, frame_size, multibit):
        from repro.sim.trace import SessionTracer

        seed = {"disk": 101, "annulus": 202, "clustered": 303}[deployment]
        network = _build_network(deployment, n_tags=300, seed=seed)
        masks = _masks_for(network, frame_size, seed=11, multibit=multibit)
        config = CCMConfig(frame_size=frame_size)
        tracer_a, tracer_b = SessionTracer(), SessionTracer()
        a = run_session(
            network, masks=masks, config=config, engine="bigint",
            tracer=tracer_a,
        )
        b = run_session(
            network, masks=masks, config=config, engine="packed",
            tracer=tracer_b,
        )
        _assert_results_identical(a, b)
        # The engines' protocol event streams are byte-identical NDJSON.
        ndjson_a = tracer_a.to_ndjson()
        assert ndjson_a.encode() == tracer_b.to_ndjson().encode()
        assert ndjson_a  # both actually traced something

    def test_no_indicator_vector_ablation(self):
        network = _build_network("disk", n_tags=250, seed=5)
        masks = _masks_for(network, 96, seed=3, multibit=True)
        config = CCMConfig(frame_size=96, use_indicator_vector=False)
        a = run_session(network, masks=masks, config=config, engine="bigint")
        b = run_session(network, masks=masks, config=config, engine="packed")
        _assert_results_identical(a, b)

    def test_max_rounds_truncation(self, line_network):
        config = CCMConfig(frame_size=8, max_rounds=2)
        picks = [0, 1, 2, 3, 4]
        a = run_session(line_network, picks, config=config, engine="bigint")
        b = run_session(line_network, picks, config=config, engine="packed")
        assert not a.terminated_cleanly
        _assert_results_identical(a, b)

    def test_tracer_events_identical(self, star_network):
        from repro.sim.trace import SessionTracer

        config = CCMConfig(frame_size=8)
        events = {}
        for engine in ("bigint", "packed"):
            tracer = SessionTracer()
            run_session(
                star_network,
                [0, 1, 2, 3, 4],
                config=config,
                tracer=tracer,
                engine=engine,
            )
            events[engine] = tracer.events
        assert events["bigint"] == events["packed"]

    def test_empty_participation(self, star_network):
        config = CCMConfig(frame_size=8)
        a = run_session(star_network, [-1] * 5, config=config, engine="bigint")
        b = run_session(star_network, [-1] * 5, config=config, engine="packed")
        _assert_results_identical(a, b)
        assert a.bitmap.popcount() == 0

    def test_packed_lossy_channel_statistics(self):
        """Lossy sensing is subtractive: no phantom bits, and loss=0
        degenerates to the perfect channel."""
        network = _build_network("disk", n_tags=200, seed=9)
        masks = _masks_for(network, 64, seed=2, multibit=False)
        config = CCMConfig(frame_size=64)
        truth = run_session(network, masks=masks, config=config)
        lossy = run_session(
            network,
            masks=masks,
            config=config,
            channel=LossyChannel(0.3),
            rng=np.random.default_rng(17),
            engine="packed",
        )
        assert lossy.bitmap.difference(truth.bitmap).popcount() == 0
        lossless = run_session(
            network,
            masks=masks,
            config=config,
            channel=LossyChannel(0.0),
            rng=np.random.default_rng(17),
            engine="packed",
        )
        assert lossless.bitmap.bits == truth.bitmap.bits


class TestLossyCrossEngineEquivalence:
    """packed ≡ bigint under LossyChannel: the repro-channel-rng-v1
    contract pins the Bernoulli draw order, so for the same seed the two
    engines produce bit-identical sessions — masks, metrics, ledger
    floats, and tracer NDJSON."""

    @pytest.mark.parametrize("loss", [0.2, 0.5, 0.8])
    @pytest.mark.parametrize(
        "frame_size", [37, 64, 257]
    )  # f < 64, f == 64, multi-word
    @pytest.mark.parametrize("multibit", [False, True])
    def test_grid(self, loss, frame_size, multibit):
        from repro.sim.trace import SessionTracer

        network = _build_network("disk", n_tags=300, seed=101)
        masks = _masks_for(network, frame_size, seed=11, multibit=multibit)
        config = CCMConfig(frame_size=frame_size)
        tracer_a, tracer_b = SessionTracer(), SessionTracer()
        a = run_session(
            network, masks=masks, config=config, engine="bigint",
            channel=LossyChannel(loss), rng=np.random.default_rng(4242),
            tracer=tracer_a,
        )
        b = run_session(
            network, masks=masks, config=config, engine="packed",
            channel=LossyChannel(loss), rng=np.random.default_rng(4242),
            tracer=tracer_b,
        )
        _assert_results_identical(a, b)
        ndjson_a = tracer_a.to_ndjson()
        assert ndjson_a.encode() == tracer_b.to_ndjson().encode()
        assert ndjson_a

    def test_no_indicator_vector_ablation(self):
        network = _build_network("annulus", n_tags=250, seed=202)
        masks = _masks_for(network, 96, seed=3, multibit=True)
        config = CCMConfig(frame_size=96, use_indicator_vector=False)
        a = run_session(
            network, masks=masks, config=config, engine="bigint",
            channel=LossyChannel(0.4), rng=np.random.default_rng(8),
        )
        b = run_session(
            network, masks=masks, config=config, engine="packed",
            channel=LossyChannel(0.4), rng=np.random.default_rng(8),
        )
        _assert_results_identical(a, b)

    def test_auto_matches_explicit_engines(self):
        network = _build_network("disk", n_tags=200, seed=9)
        masks = _masks_for(network, 64, seed=2, multibit=False)
        config = CCMConfig(frame_size=64)
        auto = run_session(
            network, masks=masks, config=config,
            channel=LossyChannel(0.3), rng=np.random.default_rng(17),
        )
        explicit = run_session(
            network, masks=masks, config=config, engine="bigint",
            channel=LossyChannel(0.3), rng=np.random.default_rng(17),
        )
        _assert_results_identical(auto, explicit)

    def test_zero_loss_routes_to_slot_major_without_rng(self):
        """LossyChannel(0.0) consumes no draws, so auto must reach the
        silent slot-major fast path — which never touches an rng.  The
        bigint/tag-major lossy paths raise without one, so succeeding
        here proves the dispatch."""
        network = _build_network("disk", n_tags=200, seed=9)
        masks = _masks_for(network, 64, seed=2, multibit=False)
        config = CCMConfig(frame_size=64)
        perfect = run_session(network, masks=masks, config=config)
        lossless = run_session(
            network, masks=masks, config=config, channel=LossyChannel(0.0)
        )
        _assert_results_identical(perfect, lossless)


class TestUnifiedAPI:
    def test_exactly_one_of_picks_and_masks(self, star_network):
        config = CCMConfig(frame_size=8)
        with pytest.raises(ValueError, match="exactly one"):
            run_session(star_network, config=config)
        with pytest.raises(ValueError, match="exactly one"):
            run_session(
                star_network, [0] * 5, masks=[1] * 5, config=config
            )

    def test_numpy_masks_accepted(self, star_network):
        """numpy integer masks must not overflow at large frame sizes."""
        masks = np.array([1, 2, 4, 8, 16], dtype=np.int64)
        result = run_session(
            star_network, masks=masks, config=CCMConfig(frame_size=100)
        )
        assert result.bitmap.popcount() == 5

    def test_run_session_masks_removed(self):
        """The deprecated alias completed its one-release grace period."""
        import repro.core
        import repro.core.session

        assert not hasattr(repro.core.session, "run_session_masks")
        assert not hasattr(repro.core, "run_session_masks")
        assert "run_session_masks" not in repro.core.__all__

    def test_top_level_exports(self):
        import repro

        for name in (
            "SessionEngine",
            "SessionTracer",
            "RoundStats",
            "available_engines",
            "get_engine",
            "register_engine",
        ):
            assert name in repro.__all__
            assert hasattr(repro, name)
        assert not hasattr(repro, "picks_to_masks")


class TestMultiReaderCheckingLength:
    def test_deepest_reader_wins(self):
        positions = np.array([[1.0, 0.0], [30.0, 0.0]])
        shallow = Reader(
            position=Point(0.0, 0.0),
            reader_to_tag_range=5.0,
            tag_to_reader_range=5.0,
        )
        deep = Reader(
            position=Point(29.0, 0.0),
            reader_to_tag_range=20.0,
            tag_to_reader_range=2.0,
        )
        net = Network.build(positions, [shallow, deep], tag_range=3.0)
        # shallow estimates 1 tier -> L_c 2; deep estimates 1+ceil(18/3)=7
        # tiers -> L_c 14.  The max must win or deep sessions die early.
        assert default_checking_frame_length(net) == 14
        net_shallow_only = Network.build(positions, [shallow], tag_range=3.0)
        assert default_checking_frame_length(net_shallow_only) == 2
