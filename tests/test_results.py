"""Tests for repro.sim.results — persistence and report rendering."""

import json

import pytest

from repro.sim.results import (
    load_sweep,
    markdown_table,
    save_sweep,
    sweep_from_dict,
    sweep_to_csv,
    sweep_to_dict,
)
from repro.sim.runner import sweep


@pytest.fixture()
def small_sweep():
    def factory(value):
        def trial(k, seed):
            return {"metric_a": value * 2.0, "metric_b": float(seed % 5)}

        return trial

    return sweep("x", [1.0, 2.0], factory, n_trials=3, base_seed=9)


class TestDictRoundtrip:
    def test_roundtrip_preserves_everything(self, small_sweep):
        back = sweep_from_dict(sweep_to_dict(small_sweep))
        assert back.parameter == small_sweep.parameter
        assert back.values == small_sweep.values
        assert back.series("metric_a") == small_sweep.series("metric_a")
        assert back.series("metric_b", "std") == small_sweep.series(
            "metric_b", "std"
        )
        assert back.aggregates[0]["metric_a"].count == 3

    def test_format_marker_checked(self):
        with pytest.raises(ValueError):
            sweep_from_dict({"format": "something-else"})

    def test_dict_is_json_serialisable(self, small_sweep):
        json.dumps(sweep_to_dict(small_sweep))


class TestFileRoundtrip:
    def test_save_load(self, small_sweep, tmp_path):
        path = tmp_path / "sweep.json"
        save_sweep(small_sweep, path)
        back = load_sweep(path)
        assert back.series("metric_a") == small_sweep.series("metric_a")

    def test_load_rejects_other_json(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text('{"hello": 1}')
        with pytest.raises(ValueError):
            load_sweep(path)


class TestCsv:
    def test_long_form_layout(self, small_sweep):
        text = sweep_to_csv(small_sweep)
        lines = text.strip().splitlines()
        # header + 2 values x 2 metrics
        assert len(lines) == 1 + 4
        assert lines[0].startswith("x,metric,mean")

    def test_metric_subset(self, small_sweep):
        text = sweep_to_csv(small_sweep, metrics=["metric_a"])
        assert "metric_b" not in text

    def test_missing_metric_raises(self, small_sweep):
        with pytest.raises(KeyError):
            sweep_to_csv(small_sweep, metrics=["nope"])

    def test_writes_file(self, small_sweep, tmp_path):
        path = tmp_path / "sweep.csv"
        sweep_to_csv(small_sweep, path=path)
        assert path.read_text().startswith("x,metric")


class TestMarkdown:
    def test_measured_only(self):
        text = markdown_table("T", [2.0, 6.0], {"SICP": [1.0, 2.0]})
        assert "**T**" in text
        assert "| SICP (measured) | 1.0 | 2.0 |" in text

    def test_with_paper_rows(self):
        text = markdown_table(
            "T", [2.0], {"SICP": [1.0]}, {"SICP": [10.0]}
        )
        assert "(paper) | 10.0 |" in text

    def test_column_labels(self):
        text = markdown_table("T", [3.0], {"a": [1.0]}, col_label="loss")
        assert "loss=3" in text
