"""RunPlan: the unified execution-options object and its deprecation shim.

Covers the plan value object itself (validation, ``replace``,
``from_args`` round-trips through the shared CLI argument group) and the
contract of the four campaign entry points: ``plan=`` is the one
spelling, the legacy per-keyword forms emit exactly one
DeprecationWarning with byte-identical results, and mixing the two is an
error.
"""

from __future__ import annotations

import warnings

import pytest

import repro.sim as sim
from repro.sim.parallel import Campaign, ExecutorConfig, run_trials_parallel
from repro.sim.plan import (
    ObsPlan,
    RunPlan,
    add_execution_arguments,
    coerce_run_plan,
)
from repro.sim.runner import run_trials, sweep


def counting_trial(trial_index, seed):
    return {"value": float(seed % 997), "index": float(trial_index)}


def assert_same_aggregates(a, b):
    assert sorted(a) == sorted(b)
    for name in a:
        for fld in ("mean", "std", "minimum", "maximum", "count"):
            assert getattr(a[name], fld) == getattr(b[name], fld)


class TestRunPlanObject:
    def test_defaults(self):
        plan = RunPlan()
        assert plan.engine == "auto"
        assert plan.executor is None
        assert plan.store is None
        assert plan.resume is False
        assert plan.batch == 1
        assert plan.obs == ObsPlan()

    def test_frozen(self):
        with pytest.raises(AttributeError):
            RunPlan().engine = "packed"

    def test_batch_validated(self):
        with pytest.raises(ValueError, match="batch"):
            RunPlan(batch=0)
        with pytest.raises(ValueError, match="batch"):
            RunPlan(batch=-3)

    def test_engine_validated(self):
        with pytest.raises(ValueError, match="engine"):
            RunPlan(engine="")
        with pytest.raises(ValueError, match="engine"):
            RunPlan(engine=None)

    def test_replace(self):
        plan = RunPlan().replace(engine="batch", batch=8)
        assert plan.engine == "batch"
        assert plan.batch == 8
        assert RunPlan().engine == "auto"  # original untouched

    def test_exported_from_sim(self):
        for name in ("RunPlan", "ObsPlan", "add_execution_arguments"):
            assert name in sim.__all__
            assert hasattr(sim, name)


class TestFromArgs:
    def _parse(self, argv):
        import argparse

        parser = argparse.ArgumentParser()
        add_execution_arguments(parser)
        return parser.parse_args(argv)

    def test_default_namespace_gives_default_plan(self):
        plan = RunPlan.from_args(self._parse([]))
        assert plan == RunPlan()

    def test_workers_and_backend(self):
        plan = RunPlan.from_args(
            self._parse(["--workers", "3", "--backend", "thread"])
        )
        assert plan.executor == ExecutorConfig(workers=3, backend="thread")

    def test_no_workers_means_no_executor(self):
        plan = RunPlan.from_args(self._parse(["--backend", "thread"]))
        assert plan.executor is None

    def test_batch_and_engine(self):
        plan = RunPlan.from_args(
            self._parse(["--batch", "25", "--engine", "batch"])
        )
        assert plan.batch == 25
        assert plan.engine == "batch"

    def test_cache_dir_implies_cache(self, tmp_path):
        plan = RunPlan.from_args(self._parse(["--cache-dir", str(tmp_path)]))
        assert plan.store is not None
        assert str(plan.store.root) == str(tmp_path)

    def test_resume_implies_cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        plan = RunPlan.from_args(self._parse(["--resume"]))
        assert plan.resume is True
        assert plan.store is not None

    def test_no_cache_wins(self, tmp_path):
        plan = RunPlan.from_args(
            self._parse(
                ["--cache", "--cache-dir", str(tmp_path), "--resume",
                 "--no-cache"]
            )
        )
        assert plan.store is None
        assert plan.resume is False

    def test_progress_lands_in_obs(self):
        plan = RunPlan.from_args(self._parse(["--progress"]))
        assert plan.obs.progress is True

    def test_partial_namespace_works(self):
        import argparse

        ns = argparse.Namespace(workers=2)
        plan = RunPlan.from_args(ns)
        assert plan.executor == ExecutorConfig(workers=2, backend="process")
        assert plan.batch == 1

    def test_every_cli_subcommand_mounts_the_group(self):
        from repro.experiments.cli import build_parser

        parser = build_parser()
        for cmd in (
            "fig3", "fig4", "tables", "theorem1", "accuracy", "analysis",
            "ablations", "extensions", "statefree", "robustness",
            "estimators", "map", "render", "all",
        ):
            args = parser.parse_args([cmd])
            for dest in (
                "workers", "backend", "batch", "engine", "progress",
                "cache", "no_cache", "cache_dir", "resume",
            ):
                assert hasattr(args, dest), f"{cmd} lacks --{dest}"
            # and the namespace resolves into a plan
            assert RunPlan.from_args(args) == RunPlan()


class TestCoerce:
    def test_plain_call_builds_default_plan_without_warning(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            plan = coerce_run_plan(None)
        assert plan == RunPlan()

    def test_plan_passes_through_identically(self):
        plan = RunPlan(batch=4)
        assert coerce_run_plan(plan) is plan

    def test_legacy_kwargs_warn_once(self):
        with pytest.warns(DeprecationWarning, match="executor=") as record:
            plan = coerce_run_plan(
                None, executor=ExecutorConfig.serial(), resume=False
            )
        assert len(record) == 1
        assert plan.executor == ExecutorConfig.serial()

    def test_plan_plus_legacy_is_an_error(self):
        with pytest.raises(ValueError, match="not both"):
            coerce_run_plan(RunPlan(), executor=ExecutorConfig.serial())

    def test_explicit_defaults_count_as_unsupplied(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            plan = coerce_run_plan(
                None, executor=None, store=None, resume=False, engine="auto"
            )
        assert plan == RunPlan()


class TestEntryPointShims:
    """Each entry point: one warning, byte-identical results, plan= clean."""

    N, SEED = 8, 77

    def test_run_trials(self):
        cfg = ExecutorConfig.serial()
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            modern = run_trials(
                counting_trial, self.N, self.SEED,
                plan=RunPlan(executor=cfg),
            )
        with pytest.warns(DeprecationWarning) as record:
            legacy = run_trials(
                counting_trial, self.N, self.SEED, executor=cfg
            )
        assert len(record) == 1
        assert_same_aggregates(modern, legacy)

    def test_sweep(self):
        cfg = ExecutorConfig.serial()
        factory = lambda v: counting_trial  # noqa: E731
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            modern = sweep(
                "v", [1.0, 2.0], factory, n_trials=3, base_seed=5,
                plan=RunPlan(executor=cfg),
            )
        with pytest.warns(DeprecationWarning) as record:
            legacy = sweep(
                "v", [1.0, 2.0], factory, n_trials=3, base_seed=5,
                executor=cfg,
            )
        assert len(record) == 1
        assert modern.values == legacy.values
        for a, b in zip(modern.aggregates, legacy.aggregates):
            assert_same_aggregates(a, b)

    def test_campaign(self):
        cfg = ExecutorConfig.serial()
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            modern = Campaign(
                counting_trial, self.N, self.SEED,
                plan=RunPlan(executor=cfg),
            ).run()
        with pytest.warns(DeprecationWarning) as record:
            legacy = Campaign(
                counting_trial, self.N, self.SEED, executor=cfg
            ).run()
        assert len(record) == 1
        assert modern.per_trial == legacy.per_trial
        assert_same_aggregates(modern.aggregates, legacy.aggregates)

    def test_run_trials_parallel(self):
        cfg = ExecutorConfig.serial()
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            modern = run_trials_parallel(
                counting_trial, self.N, self.SEED,
                plan=RunPlan(executor=cfg),
            )
        with pytest.warns(DeprecationWarning) as record:
            legacy = run_trials_parallel(
                counting_trial, self.N, self.SEED, executor=cfg
            )
        assert len(record) == 1
        assert modern.per_trial == legacy.per_trial

    def test_campaign_normalizes_plan_fields(self):
        plan = RunPlan(executor=ExecutorConfig.serial())
        campaign = Campaign(counting_trial, 2, 0, plan=plan)
        assert campaign.plan == plan
        assert campaign.executor == plan.executor

    def test_store_in_plan_memoizes(self, tmp_path):
        from repro.store import ResultStore
        from tests.test_cache_campaign import FlakyTrial

        store = ResultStore(tmp_path)
        cold = Campaign(
            FlakyTrial(), 3, 9, plan=RunPlan(store=store)
        ).run()
        warm = Campaign(
            FlakyTrial(), 3, 9, plan=RunPlan(store=store)
        ).run()
        assert cold.cache_hits == 0
        assert warm.cache_hits == 3
        assert warm.aggregates == cold.aggregates

    def test_resume_without_store_keeps_historical_error(self):
        with pytest.raises(ValueError, match="requires a result store"):
            Campaign(
                counting_trial, 2, 0, plan=RunPlan(resume=True)
            ).run()
