"""RunPlan: the unified execution-options object and its wire schema.

Covers the plan value object itself (validation, ``replace``,
``from_args`` round-trips through the shared CLI argument group), the
``repro-run-plan-v1`` wire schema (``to_json``/``from_json`` round-trip,
strict unknown-key/schema rejection, service-side store substitution)
and the contract of the four campaign entry points: ``plan=`` is the
*only* execution interface — the legacy per-keyword spellings are gone
and now raise ``TypeError``.
"""

from __future__ import annotations

import pytest

import repro.sim as sim
from repro.sim.parallel import Campaign, ExecutorConfig, run_trials_parallel
from repro.sim.plan import (
    PLAN_SCHEMA,
    ObsPlan,
    RunPlan,
    add_execution_arguments,
)
from repro.sim.runner import run_trials, sweep


def counting_trial(trial_index, seed):
    return {"value": float(seed % 997), "index": float(trial_index)}


def assert_same_aggregates(a, b):
    assert sorted(a) == sorted(b)
    for name in a:
        for fld in ("mean", "std", "minimum", "maximum", "count"):
            assert getattr(a[name], fld) == getattr(b[name], fld)


class TestRunPlanObject:
    def test_defaults(self):
        plan = RunPlan()
        assert plan.engine == "auto"
        assert plan.executor is None
        assert plan.store is None
        assert plan.resume is False
        assert plan.batch == 1
        assert plan.obs == ObsPlan()

    def test_frozen(self):
        with pytest.raises(AttributeError):
            RunPlan().engine = "packed"

    def test_batch_validated(self):
        with pytest.raises(ValueError, match="batch"):
            RunPlan(batch=0)
        with pytest.raises(ValueError, match="batch"):
            RunPlan(batch=-3)

    def test_engine_validated(self):
        with pytest.raises(ValueError, match="engine"):
            RunPlan(engine="")
        with pytest.raises(ValueError, match="engine"):
            RunPlan(engine=None)

    def test_replace(self):
        plan = RunPlan().replace(engine="batch", batch=8)
        assert plan.engine == "batch"
        assert plan.batch == 8
        assert RunPlan().engine == "auto"  # original untouched

    def test_exported_from_sim(self):
        for name in ("RunPlan", "ObsPlan", "add_execution_arguments"):
            assert name in sim.__all__
            assert hasattr(sim, name)


class TestFromArgs:
    def _parse(self, argv):
        import argparse

        parser = argparse.ArgumentParser()
        add_execution_arguments(parser)
        return parser.parse_args(argv)

    def test_default_namespace_gives_default_plan(self):
        plan = RunPlan.from_args(self._parse([]))
        assert plan == RunPlan()

    def test_workers_and_backend(self):
        plan = RunPlan.from_args(
            self._parse(["--workers", "3", "--backend", "thread"])
        )
        assert plan.executor == ExecutorConfig(workers=3, backend="thread")

    def test_no_workers_means_no_executor(self):
        plan = RunPlan.from_args(self._parse(["--backend", "thread"]))
        assert plan.executor is None

    def test_batch_and_engine(self):
        plan = RunPlan.from_args(
            self._parse(["--batch", "25", "--engine", "batch"])
        )
        assert plan.batch == 25
        assert plan.engine == "batch"

    def test_cache_dir_implies_cache(self, tmp_path):
        plan = RunPlan.from_args(self._parse(["--cache-dir", str(tmp_path)]))
        assert plan.store is not None
        assert str(plan.store.root) == str(tmp_path)

    def test_resume_implies_cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        plan = RunPlan.from_args(self._parse(["--resume"]))
        assert plan.resume is True
        assert plan.store is not None

    def test_no_cache_wins(self, tmp_path):
        plan = RunPlan.from_args(
            self._parse(
                ["--cache", "--cache-dir", str(tmp_path), "--resume",
                 "--no-cache"]
            )
        )
        assert plan.store is None
        assert plan.resume is False

    def test_progress_lands_in_obs(self):
        plan = RunPlan.from_args(self._parse(["--progress"]))
        assert plan.obs.progress is True

    def test_partial_namespace_works(self):
        import argparse

        ns = argparse.Namespace(workers=2)
        plan = RunPlan.from_args(ns)
        assert plan.executor == ExecutorConfig(workers=2, backend="process")
        assert plan.batch == 1

    def test_every_cli_subcommand_mounts_the_group(self):
        from repro.experiments.cli import build_parser

        parser = build_parser()
        for cmd in (
            "fig3", "fig4", "tables", "theorem1", "accuracy", "analysis",
            "ablations", "extensions", "statefree", "robustness",
            "estimators", "map", "render", "all",
        ):
            args = parser.parse_args([cmd])
            for dest in (
                "workers", "backend", "batch", "engine", "progress",
                "cache", "no_cache", "cache_dir", "resume",
            ):
                assert hasattr(args, dest), f"{cmd} lacks --{dest}"
            # and the namespace resolves into a plan
            assert RunPlan.from_args(args) == RunPlan()


class TestWireSchema:
    """``repro-run-plan-v1``: to_json/from_json round-trip and strictness."""

    def test_default_plan_round_trips(self):
        doc = RunPlan().to_json()
        assert doc["schema"] == PLAN_SCHEMA
        assert RunPlan.from_json(doc) == RunPlan()

    def test_document_is_canonical_json_able(self):
        from repro.store.canonical import canonical_json

        text = canonical_json(RunPlan(batch=4, engine="packed").to_json())
        assert RunPlan.from_json(text) == RunPlan(batch=4, engine="packed")

    def test_executor_round_trips(self):
        cfg = ExecutorConfig(
            workers=3, backend="thread", chunk_size=2,
            timeout_s=1.5, max_retries=2, fail_fast=True,
        )
        plan = RunPlan.from_json(RunPlan(executor=cfg).to_json())
        assert plan.executor == cfg

    def test_store_round_trips_as_root_path(self, tmp_path):
        from repro.store import ResultStore

        plan = RunPlan(store=ResultStore(tmp_path), resume=True)
        doc = plan.to_json()
        assert doc["store"] == {"root": str(tmp_path)}
        loaded = RunPlan.from_json(doc)
        assert str(loaded.store.root) == str(tmp_path)
        assert loaded.resume is True

    def test_store_override_substitutes_service_store(self, tmp_path):
        from repro.store import ResultStore

        submitted = RunPlan(
            store=ResultStore(tmp_path / "client"), resume=True
        ).to_json()
        service_store = ResultStore(tmp_path / "service")
        plan = RunPlan.from_json(submitted, store=service_store)
        assert plan.store is service_store

    def test_resume_dropped_without_store(self):
        doc = RunPlan().to_json()
        doc["resume"] = True
        assert RunPlan.from_json(doc).resume is False

    def test_checkpoint_namespace_round_trips(self):
        plan = RunPlan(checkpoint_namespace="jobs/abc-123")
        assert RunPlan.from_json(plan.to_json()) == plan

    def test_bad_namespace_rejected(self):
        with pytest.raises(ValueError, match="namespace"):
            RunPlan(checkpoint_namespace="../escape")

    def test_wrong_schema_rejected(self):
        doc = RunPlan().to_json()
        doc["schema"] = "repro-run-plan-v0"
        with pytest.raises(ValueError, match="schema"):
            RunPlan.from_json(doc)

    def test_unknown_keys_rejected(self):
        doc = RunPlan().to_json()
        doc["warp_factor"] = 9
        with pytest.raises(ValueError, match="warp_factor"):
            RunPlan.from_json(doc)

    def test_missing_keys_take_defaults(self):
        assert RunPlan.from_json({"schema": PLAN_SCHEMA}) == RunPlan()

    def test_non_object_rejected(self):
        with pytest.raises(ValueError, match="JSON object"):
            RunPlan.from_json("[1, 2]")

    def test_obs_round_trips(self):
        plan = RunPlan(
            obs=ObsPlan(metrics_out="m.json", trace_out="t.ndjson",
                        progress=True)
        )
        assert RunPlan.from_json(plan.to_json()) == plan


class TestPlanOnlyAPI:
    """``plan=`` is the only execution interface; legacy kwargs are gone."""

    N, SEED = 8, 77

    def test_run_trials_plan(self):
        result = run_trials(
            counting_trial, self.N, self.SEED,
            plan=RunPlan(executor=ExecutorConfig.serial()),
        )
        assert result["value"].count == self.N

    def test_run_trials_rejects_legacy_kwargs(self):
        with pytest.raises(TypeError):
            run_trials(
                counting_trial, self.N, self.SEED,
                executor=ExecutorConfig.serial(),
            )

    def test_sweep_plan_and_rejects_legacy(self):
        factory = lambda v: counting_trial  # noqa: E731
        result = sweep(
            "v", [1.0, 2.0], factory, n_trials=3, base_seed=5,
            plan=RunPlan(executor=ExecutorConfig.serial()),
        )
        assert result.values == [1.0, 2.0]
        with pytest.raises(TypeError):
            sweep(
                "v", [1.0], factory, n_trials=3, base_seed=5,
                executor=ExecutorConfig.serial(),
            )

    def test_campaign_rejects_legacy_kwargs(self):
        with pytest.raises(TypeError):
            Campaign(
                counting_trial, self.N, self.SEED,
                executor=ExecutorConfig.serial(),
            )

    def test_campaign_plan_matches_run_trials(self):
        plan = RunPlan(executor=ExecutorConfig.serial())
        direct = run_trials(counting_trial, self.N, self.SEED, plan=plan)
        campaign = Campaign(
            counting_trial, self.N, self.SEED, plan=plan
        ).run()
        assert_same_aggregates(direct, campaign.aggregates)

    def test_run_trials_parallel_rejects_legacy_kwargs(self):
        with pytest.raises(TypeError):
            run_trials_parallel(
                counting_trial, self.N, self.SEED,
                executor=ExecutorConfig.serial(),
            )

    def test_run_trials_parallel_plan(self):
        result = run_trials_parallel(
            counting_trial, self.N, self.SEED,
            plan=RunPlan(executor=ExecutorConfig.serial()),
        )
        assert result.n_trials == self.N

    def test_campaign_normalizes_plan_fields(self):
        plan = RunPlan(executor=ExecutorConfig.serial())
        campaign = Campaign(counting_trial, 2, 0, plan=plan)
        assert campaign.plan == plan
        assert campaign.executor == plan.executor

    def test_store_in_plan_memoizes(self, tmp_path):
        from repro.store import ResultStore
        from tests.test_cache_campaign import FlakyTrial

        store = ResultStore(tmp_path)
        cold = Campaign(
            FlakyTrial(), 3, 9, plan=RunPlan(store=store)
        ).run()
        warm = Campaign(
            FlakyTrial(), 3, 9, plan=RunPlan(store=store)
        ).run()
        assert cold.cache_hits == 0
        assert warm.cache_hits == 3
        assert warm.aggregates == cold.aggregates

    def test_resume_without_store_keeps_historical_error(self):
        with pytest.raises(ValueError, match="requires a result store"):
            Campaign(
                counting_trial, 2, 0, plan=RunPlan(resume=True)
            ).run()
