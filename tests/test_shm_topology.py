"""Shared-memory topology lifecycle: publish, attach, crash, cleanup.

The campaign engine ships paper-scale topologies to process-pool workers
by name (one POSIX shared-memory segment, tiny picklable handle) instead
of pickling tens of MB of CSR adjacency per task.  These tests pin the
lifecycle contract: bit-identical attached views, read-only enforcement,
refcounting, fork survival, worker-crash leak recovery via the
:meth:`SharedTopology.cleanup` janitor, and the deterministic-rebuild
fallback when a segment is gone.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle

import numpy as np
import pytest

from repro.net.shm import (
    SharedTopology,
    TopologyHandle,
    attach_cached,
    shared_memory_available,
)
from repro.net.topology import PaperDeployment, paper_network

pytestmark = pytest.mark.skipif(
    not shared_memory_available(),
    reason="multiprocessing.shared_memory unavailable",
)

ARRAY_FIELDS = (
    "positions", "tag_ids", "indptr", "indices", "tiers", "reader_distance"
)


def _segment_exists(name: str) -> bool:
    from multiprocessing import shared_memory

    try:
        shm = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    shm.close()
    # Opening registered the borrowed name with the resource tracker;
    # balance it so the tracker daemon never sees a stray entry.
    from repro.net.shm import _untrack

    _untrack(shm)
    return True


@pytest.fixture()
def network():
    return paper_network(
        6.0, n_tags=250, seed=77, deployment=PaperDeployment(n_tags=250)
    )


class TestPublishAttach:
    def test_round_trip_is_bit_identical(self, network):
        topo = SharedTopology.publish(network)
        try:
            attached = SharedTopology.attach(topo.handle)
            try:
                for fieldname in ARRAY_FIELDS:
                    np.testing.assert_array_equal(
                        getattr(attached.network, fieldname),
                        getattr(network, fieldname),
                    )
                assert attached.network.tag_range == network.tag_range
                assert len(attached.network.readers) == len(network.readers)
                assert attached.network.n_tags == network.n_tags
            finally:
                attached.close()
        finally:
            topo.close()

    def test_attached_views_are_read_only(self, network):
        topo = SharedTopology.publish(network)
        try:
            attached = SharedTopology.attach(topo.handle)
            try:
                for fieldname in ARRAY_FIELDS:
                    view = getattr(attached.network, fieldname)
                    assert view.flags.writeable is False
                    with pytest.raises((ValueError, RuntimeError)):
                        view[...] = 0
            finally:
                attached.close()
        finally:
            topo.close()

    def test_handle_is_small_and_picklable(self, network):
        topo = SharedTopology.publish(network)
        try:
            blob = pickle.dumps(topo.handle)
            # The point of the handle: orders of magnitude below the
            # pickled network itself.
            assert len(blob) < 2048
            clone = pickle.loads(blob)
            assert isinstance(clone, TopologyHandle)
            assert clone.name == topo.handle.name
            assert clone.specs == topo.handle.specs
        finally:
            topo.close()

    def test_owner_close_unlinks_segment(self, network):
        topo = SharedTopology.publish(network)
        name = topo.handle.name
        assert _segment_exists(name)
        topo.close()
        assert not _segment_exists(name)

    def test_attach_after_unlink_raises(self, network):
        topo = SharedTopology.publish(network)
        handle = topo.handle
        topo.close()
        with pytest.raises(FileNotFoundError):
            SharedTopology.attach(handle)

    def test_session_results_identical_over_shared_topology(self, network):
        from repro.core.session import CCMConfig, run_session
        from repro.protocols.transport import frame_picks

        picks = frame_picks(network.tag_ids, 64, 1.0, 5)
        config = CCMConfig(frame_size=64)
        direct = run_session(network, picks, config=config)
        topo = SharedTopology.publish(network)
        try:
            attached = SharedTopology.attach(topo.handle)
            try:
                shared = run_session(attached.network, picks, config=config)
            finally:
                attached.close()
        finally:
            topo.close()
        assert shared.bitmap == direct.bitmap
        assert shared.rounds == direct.rounds
        assert shared.total_slots == direct.total_slots
        np.testing.assert_array_equal(
            shared.ledger.bits_sent, direct.ledger.bits_sent
        )


class TestRefcounting:
    def test_acquire_defers_unlink_to_last_close(self, network):
        topo = SharedTopology.publish(network)
        name = topo.handle.name
        topo.acquire()
        topo.close()  # one reference still out
        assert _segment_exists(name)
        topo.close()
        assert not _segment_exists(name)

    def test_close_is_idempotent(self, network):
        topo = SharedTopology.publish(network)
        topo.close()
        topo.close()  # no error, no tracker noise

    def test_acquire_after_close_rejected(self, network):
        topo = SharedTopology.publish(network)
        topo.close()
        with pytest.raises(ValueError, match="closed"):
            topo.acquire()

    def test_context_manager_closes(self, network):
        with SharedTopology.publish(network) as topo:
            name = topo.handle.name
            assert _segment_exists(name)
        assert not _segment_exists(name)


class TestAttachCached:
    def test_reuses_one_mapping_per_process(self, network):
        topo = SharedTopology.publish(network)
        try:
            first = attach_cached(topo.handle)
            second = attach_cached(topo.handle)
            assert first is second
        finally:
            topo.close()

    def test_gone_segment_raises_for_caller_fallback(self, network):
        topo = SharedTopology.publish(network)
        handle = topo.handle
        topo.close()
        with pytest.raises(FileNotFoundError):
            attach_cached(handle)


def _child_attach_ok(handle, checksum, code):
    """Runs in a forked child: attach, verify bytes, exit cleanly."""
    from repro.net.shm import SharedTopology

    attached = SharedTopology.attach(handle)
    ok = int(attached.network.indices.sum()) == checksum
    attached.close()
    os._exit(code if ok else 99)


def _child_attach_and_crash(handle):
    """Runs in a forked child: attach, then die without any cleanup."""
    from repro.net.shm import SharedTopology

    SharedTopology.attach(handle)
    os._exit(1)  # skips atexit/close — a worker hard-crash


class TestAcrossProcesses:
    def test_pickled_handle_attaches_in_child(self, network):
        topo = SharedTopology.publish(network)
        try:
            checksum = int(network.indices.sum())
            proc = multiprocessing.Process(
                target=_child_attach_ok, args=(topo.handle, checksum, 0)
            )
            proc.start()
            proc.join(timeout=60)
            assert proc.exitcode == 0
        finally:
            topo.close()

    def test_worker_crash_leaves_parent_usable(self, network):
        topo = SharedTopology.publish(network)
        try:
            name = topo.handle.name
            proc = multiprocessing.Process(
                target=_child_attach_and_crash, args=(topo.handle,)
            )
            proc.start()
            proc.join(timeout=60)
            assert proc.exitcode == 1
            # The crash must not have torn the segment down under the
            # owner: the parent's mapping still reads, and new workers
            # can still attach.
            assert _segment_exists(name)
            assert int(topo.network.indices.sum()) == int(
                network.indices.sum()
            )
            again = SharedTopology.attach(topo.handle)
            again.close()
        finally:
            topo.close()

    def test_cleanup_janitor_removes_leaked_segment(self, network):
        # Simulate an owner crash: publish, then drop the object without
        # close() so the segment name leaks.
        topo = SharedTopology.publish(network)
        name = topo.handle.name
        from repro.net import shm as shm_mod

        shm_mod._OWNED.remove(topo)  # the "owner process" is gone
        topo._closed = True  # neuter the local finalizer path
        assert _segment_exists(name)
        assert SharedTopology.cleanup(name) is True
        assert not _segment_exists(name)
        assert SharedTopology.cleanup(name) is False  # idempotent


class TestSessionBatchTrialTopology:
    def test_trial_prefers_shm_and_falls_back_to_rebuild(self):
        from repro.experiments.common import SessionBatchTrial

        base = SessionBatchTrial(
            tag_range=6.0, n_tags=250, frame_size=64, topology_seed=77
        )
        rebuilt = base._resolve_network()
        topo = SharedTopology.publish(rebuilt)
        try:
            shm_trial = SessionBatchTrial(
                tag_range=6.0, n_tags=250, frame_size=64, topology_seed=77,
                topology=topo.handle,
            )
            attached = shm_trial._resolve_network()
            np.testing.assert_array_equal(
                attached.indices, rebuilt.indices
            )
            # Same physics either way -> identical trial metrics.
            assert shm_trial(0, 1234) == base(0, 1234)
            handle = topo.handle
        finally:
            topo.close()
        # Segment gone -> deterministic rebuild, same metrics again.
        fallback_trial = SessionBatchTrial(
            tag_range=6.0, n_tags=250, frame_size=64, topology_seed=77,
            topology=handle,
        )
        assert fallback_trial(0, 1234) == base(0, 1234)

    def test_cache_config_excludes_transport_handles(self, network):
        from repro.experiments.common import SessionBatchTrial

        topo = SharedTopology.publish(network)
        try:
            with_handle = SessionBatchTrial(
                tag_range=6.0, n_tags=250, frame_size=64,
                topology=topo.handle,
            )
            without = SessionBatchTrial(
                tag_range=6.0, n_tags=250, frame_size=64
            )
            assert with_handle.cache_config() == without.cache_config()
            config = with_handle.cache_config()
            assert "topology" not in config
            assert "network" not in config
        finally:
            topo.close()
