"""Tests for repro.core.reliability and the lossy-channel experiment."""

import numpy as np
import pytest

from repro.core.reliability import robust_collect
from repro.core.session import CCMConfig
from repro.net.channel import LossyChannel, PerfectChannel
from repro.experiments import robustness
from repro.net.topology import PaperDeployment, paper_network
from repro.protocols.transport import frame_picks, ideal_bitmap


@pytest.fixture(scope="module")
def sparse_network():
    """Sparse deployment (mean degree ~4) where losses actually bite."""
    return paper_network(
        3.0, n_tags=400, seed=808, deployment=PaperDeployment(n_tags=400)
    )


class TestRobustCollect:
    def test_perfect_channel_stops_after_quiet(self, sparse_network):
        picks = frame_picks(sparse_network.tag_ids, 128, 1.0, seed=1)
        result = robust_collect(
            sparse_network, picks, CCMConfig(frame_size=128),
            channel=PerfectChannel(), rng=np.random.default_rng(0),
        )
        # Session 1 collects everything; sessions 2-3 are the quiet checks.
        assert result.sessions == 3
        assert result.new_bits_per_session[1:] == [0, 0]

    def test_monotone_convergence(self, sparse_network):
        picks = frame_picks(sparse_network.tag_ids, 128, 1.0, seed=2)
        rng = np.random.default_rng(5)
        result = robust_collect(
            sparse_network, picks, CCMConfig(frame_size=128),
            channel=LossyChannel(loss=0.5), rng=rng, max_sessions=6,
        )
        # The combined bitmap only grows, and per-session results are
        # subsets of the combination.
        for session in result.per_session:
            assert session.bitmap.difference(result.bitmap).is_empty()

    def test_no_phantom_bits(self, sparse_network):
        picks = frame_picks(sparse_network.tag_ids, 128, 1.0, seed=3)
        reachable = sparse_network.tag_ids[sparse_network.reachable_mask]
        truth = ideal_bitmap(reachable, 128, 1.0, 3)
        result = robust_collect(
            sparse_network, picks, CCMConfig(frame_size=128),
            channel=LossyChannel(loss=0.6),
            rng=np.random.default_rng(6), max_sessions=5,
        )
        assert result.bitmap.difference(truth).is_empty()

    def test_repeats_recover_lost_bits(self, sparse_network):
        """Across seeds, the OR of several lossy sessions misses no more
        than any single one (and typically strictly less)."""
        picks = frame_picks(sparse_network.tag_ids, 128, 1.0, seed=4)
        reachable = sparse_network.tag_ids[sparse_network.reachable_mask]
        truth = ideal_bitmap(reachable, 128, 1.0, 4)
        rng = np.random.default_rng(7)
        result = robust_collect(
            sparse_network, picks, CCMConfig(frame_size=128),
            channel=LossyChannel(loss=0.5), rng=rng, max_sessions=6,
        )
        combined_missed = truth.difference(result.bitmap).popcount()
        first_missed = truth.difference(
            result.per_session[0].bitmap
        ).popcount()
        assert combined_missed <= first_missed

    def test_ledger_accumulates_over_sessions(self, sparse_network):
        picks = frame_picks(sparse_network.tag_ids, 128, 1.0, seed=5)
        result = robust_collect(
            sparse_network, picks, CCMConfig(frame_size=128),
            channel=PerfectChannel(), rng=np.random.default_rng(1),
        )
        # Three sessions' worth of listening: at least 3 frames per tag.
        assert np.all(result.ledger.bits_received >= 3 * 1)
        assert result.slots.total_slots == sum(
            s.slots.total_slots for s in result.per_session
        )

    def test_validation(self, sparse_network):
        picks = frame_picks(sparse_network.tag_ids, 128, 1.0, seed=6)
        with pytest.raises(ValueError):
            robust_collect(
                sparse_network, picks, CCMConfig(frame_size=128),
                channel=PerfectChannel(), rng=np.random.default_rng(0),
                max_sessions=0,
            )
        with pytest.raises(ValueError):
            robust_collect(
                sparse_network, picks, CCMConfig(frame_size=128),
                channel=PerfectChannel(), rng=np.random.default_rng(0),
                quiet_sessions=0,
            )


class TestRobustnessExperiment:
    def test_miss_grows_with_loss_and_repeats_help(self):
        rows = robustness.run(
            n_tags=300, losses=(0.0, 0.6), n_trials=2, frame_size=128
        )
        by_loss = {row.loss: row for row in rows}
        assert by_loss[0.6].single_session_miss_rate > (
            by_loss[0.0].single_session_miss_rate
        )
        assert by_loss[0.6].robust_miss_rate <= (
            by_loss[0.6].single_session_miss_rate
        )
        for row in rows:
            assert row.phantom_bits == 0
        assert "lossy" in robustness.report(rows)

    def test_dense_regime_is_loss_immune(self):
        """The finding the experiment docstring calls out: at paper-like
        density, 20 % per-link loss changes nothing — every slot has
        hundreds of independent sensing chances."""
        rows = robustness.run(
            n_tags=1000, tag_range=6.0, frame_size=128,
            losses=(0.2,), n_trials=1,
        )
        assert rows[0].single_session_miss_rate == 0.0
