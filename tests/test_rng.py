"""Unit tests for repro.sim.rng — the deterministic tag-side hashing."""

import pytest

from repro.sim.rng import TagHasher, derive_seed, hash2, splitmix64, uniform_unit


class TestSplitmix:
    def test_deterministic(self):
        assert splitmix64(12345) == splitmix64(12345)

    def test_64_bit_output(self):
        for x in (0, 1, 2**63, 2**64 - 1):
            assert 0 <= splitmix64(x) < 2**64

    def test_distinct_inputs_distinct_outputs(self):
        outputs = {splitmix64(x) for x in range(1000)}
        assert len(outputs) == 1000  # splitmix64 is a bijection

    def test_avalanche(self):
        """Flipping one input bit flips roughly half the output bits."""
        flips = bin(splitmix64(42) ^ splitmix64(43)).count("1")
        assert 15 <= flips <= 49

    def test_hash2_order_sensitive(self):
        assert hash2(1, 2) != hash2(2, 1)

    def test_uniform_unit_range(self):
        for x in range(0, 2**64, 2**60):
            assert 0.0 <= uniform_unit(splitmix64(x)) < 1.0


class TestDeriveSeed:
    def test_labels_independent(self):
        assert derive_seed(7, 1) != derive_seed(7, 2)

    def test_label_order_matters(self):
        assert derive_seed(7, 1, 2) != derive_seed(7, 2, 1)

    def test_no_labels_still_mixes(self):
        assert derive_seed(0) != 0


class TestTagHasherSlots:
    def test_slot_in_range(self):
        h = TagHasher(99)
        for tid in range(1, 200):
            assert 0 <= h.slot_of(tid, 31) < 31

    def test_slot_deterministic_across_instances(self):
        assert TagHasher(5).slot_of(77, 100) == TagHasher(5).slot_of(77, 100)

    def test_slot_changes_with_seed(self):
        slots_a = [TagHasher(1).slot_of(t, 1000) for t in range(50)]
        slots_b = [TagHasher(2).slot_of(t, 1000) for t in range(50)]
        assert slots_a != slots_b

    def test_slot_roughly_uniform(self):
        h = TagHasher(42)
        frame = 10
        counts = [0] * frame
        n = 10_000
        for tid in range(n):
            counts[h.slot_of(tid, frame)] += 1
        expected = n / frame
        for c in counts:
            assert abs(c - expected) < 5 * (expected**0.5)

    def test_invalid_frame_size(self):
        with pytest.raises(ValueError):
            TagHasher(1).slot_of(5, 0)


class TestTagHasherSampling:
    def test_probability_bounds_enforced(self):
        h = TagHasher(1)
        with pytest.raises(ValueError):
            h.participates(1, -0.1)
        with pytest.raises(ValueError):
            h.participates(1, 1.1)

    def test_extremes(self):
        h = TagHasher(1)
        assert not h.participates(123, 0.0)
        # probability 1.0 - epsilon catches essentially everything
        assert all(h.participates(t, 0.999999999) for t in range(100))

    def test_empirical_rate(self):
        h = TagHasher(7)
        p = 0.3
        n = 20_000
        hits = sum(h.participates(t, p) for t in range(n))
        assert abs(hits / n - p) < 0.02

    def test_sampling_independent_of_slot_choice(self):
        """Participation and slot pick come from separate streams: tags in
        the sample must still be slot-uniform."""
        h = TagHasher(11)
        frame = 8
        counts = [0] * frame
        for tid in range(20_000):
            if h.participates(tid, 0.25):
                counts[h.slot_of(tid, frame)] += 1
        total = sum(counts)
        for c in counts:
            assert abs(c - total / frame) < 5 * ((total / frame) ** 0.5)


class TestBackoff:
    def test_backoff_in_window(self):
        h = TagHasher(3)
        for attempt in range(5):
            for tid in range(100):
                assert 0 <= h.backoff(tid, attempt, 16) < 16

    def test_backoff_varies_with_attempt(self):
        h = TagHasher(3)
        series = [h.backoff(42, attempt, 1024) for attempt in range(30)]
        assert len(set(series)) > 10

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            TagHasher(3).backoff(1, 0, 0)
