"""Tests for repro.core.session — Algorithm 1 on hand-built topologies.

The line and star fixtures make the tier structure exact, so these tests
assert the round-by-round behaviour the paper describes: one tier of
progress per round, indicator-vector silencing, checking-frame termination,
and the K-rounds-for-K-tiers session length.
"""

import numpy as np
import pytest

from repro.core.bitmap import Bitmap
from repro.core.session import (
    CCMConfig,
    _picks_to_masks,
    default_checking_frame_length,
    run_session,
)
from repro.net.channel import LossyChannel
from repro.net.energy import EnergyLedger
from repro.net.topology import PaperDeployment, paper_network
from repro.protocols.transport import frame_picks, ideal_bitmap


class TestConfigValidation:
    def test_frame_size_positive(self):
        with pytest.raises(ValueError):
            CCMConfig(frame_size=0)

    def test_checking_length_positive(self):
        with pytest.raises(ValueError):
            CCMConfig(frame_size=8, checking_frame_length=0)

    def test_max_rounds_positive(self):
        with pytest.raises(ValueError):
            CCMConfig(frame_size=8, max_rounds=0)

    def test_picks_length_check(self, line_network):
        with pytest.raises(ValueError):
            run_session(line_network, [0, 1], config=CCMConfig(frame_size=8))

    def test_pick_out_of_frame(self, line_network):
        with pytest.raises(ValueError):
            run_session(line_network, [9, -1, -1, -1, -1], config=CCMConfig(frame_size=8))


class TestPicksToMasks:
    def test_conversion(self):
        assert _picks_to_masks([0, 2, -1], 4) == [1, 4, 0]

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            _picks_to_masks([4], 4)


class TestDefaultCheckingLength:
    def test_line_value(self, line_network):
        # R = 10, r' = 1.5, r = 1.2 -> 2 * (1 + ceil(8.5/1.2)) = 2 * 9 = 18
        assert default_checking_frame_length(line_network) == 18

    def test_paper_r6(self):
        net = paper_network(6.0, n_tags=200, seed=0,
                            deployment=PaperDeployment(n_tags=200))
        # 2 * (1 + ceil(10/6)) = 6
        assert default_checking_frame_length(net) == 6


class TestChainPropagation:
    """Only the tier-5 tag participates: its bit must travel 5 rounds."""

    def _run(self, line_network, **config_kwargs):
        picks = [-1, -1, -1, -1, 0]
        return run_session(
            line_network, picks, config=CCMConfig(frame_size=8, **config_kwargs))

    def test_k_rounds_for_k_tiers(self, line_network):
        result = self._run(line_network)
        assert result.rounds == 5
        assert result.terminated_cleanly

    def test_bitmap_is_exactly_the_pick(self, line_network):
        result = self._run(line_network)
        assert result.bitmap == Bitmap.from_indices(8, [0])

    def test_each_tag_relays_once(self, line_network):
        """Every tag transmits the data slot exactly once; checking-frame
        responses are the only other sent bits."""
        result = self._run(line_network)
        data_bits = 1  # slot 0, once per tag
        for tag in range(5):
            checking = sum(1 for _ in result.round_stats)  # upper bound
            assert data_bits <= result.ledger.bits_sent[tag] <= data_bits + checking

    def test_round_stats_progression(self, line_network):
        result = self._run(line_network)
        transmitters = [s.transmitting_tags for s in result.round_stats]
        assert transmitters == [1, 1, 1, 1, 1]
        new_bits = [s.bits_new_at_reader for s in result.round_stats]
        assert new_bits == [0, 0, 0, 0, 1]

    def test_checking_frame_heard_until_delivery(self, line_network):
        result = self._run(line_network)
        heard = [s.reader_heard_checking for s in result.round_stats]
        assert heard == [True, True, True, True, False]

    def test_final_checking_frame_runs_full_length(self, line_network):
        result = self._run(line_network)
        assert result.round_stats[-1].checking_slots_executed == 18

    def test_checking_wave_reaches_reader_hop_by_hop(self, line_network):
        """In round 1 the pending tag is at tier 4 (it heard tier 5); the
        response wave needs 4 checking slots to reach tier 1."""
        result = self._run(line_network)
        assert result.round_stats[0].checking_slots_executed == 4

    def test_slot_accounting(self, line_network):
        result = self._run(line_network)
        checking = sum(s.checking_slots_executed for s in result.round_stats)
        assert result.slots.short_slots == 5 * 8 + checking
        assert result.slots.id_slots == 5  # ceil(8/96) = 1 per round

    def test_too_short_checking_frame_loses_data(self, line_network):
        result = self._run(line_network, checking_frame_length=2, max_rounds=10)
        assert not result.terminated_cleanly
        assert result.bitmap.is_empty()
        assert result.rounds == 1

    def test_max_rounds_exhaustion_flagged(self, line_network):
        result = self._run(line_network, max_rounds=2)
        assert not result.terminated_cleanly
        assert result.rounds == 2
        assert result.bitmap.is_empty()


class TestStarScenarios:
    def test_colliding_outer_pick_absorbed(self, star_network):
        """Tier-2 tag picks the same slot as a tier-1 tag: one round."""
        picks = [0, 1, 2, 3, 0]
        result = run_session(star_network, picks, config=CCMConfig(frame_size=8))
        assert result.rounds == 1
        assert result.bitmap == Bitmap.from_indices(8, [0, 1, 2, 3])

    def test_unique_outer_pick_takes_two_rounds(self, star_network):
        picks = [0, 1, 2, 3, 4]
        result = run_session(star_network, picks, config=CCMConfig(frame_size=8))
        assert result.rounds == 2
        assert result.bitmap == Bitmap.from_indices(8, [0, 1, 2, 3, 4])

    def test_no_participants(self, star_network):
        result = run_session(
            star_network, [-1] * 5, config=CCMConfig(frame_size=8))
        assert result.rounds == 1
        assert result.bitmap.is_empty()
        assert result.terminated_cleanly
        # Nothing was sent in the data frame.
        assert result.round_stats[0].transmitting_tags == 0

    def test_indicator_vector_stops_outward_flood(self, star_network):
        """With the indicator vector, tier-1 picks never reach round 2;
        without it, the tier-2 tag re-transmits what it overheard."""
        picks = [0, 1, 2, 3, -1]
        with_iv = run_session(star_network, picks, config=CCMConfig(frame_size=8))
        without_iv = run_session(
            star_network,
            picks,
            config=CCMConfig(frame_size=8, use_indicator_vector=False, max_rounds=6),
        )
        assert with_iv.rounds == 1
        assert with_iv.bitmap == without_iv.bitmap
        assert (
            without_iv.ledger.bits_sent.sum() > with_iv.ledger.bits_sent.sum()
        )


class TestHalfDuplex:
    def test_same_slot_neighbors_do_not_relearn(self, line_network):
        """Tags 1 and 2 pick the same slot; transmitting simultaneously,
        neither hears the other, and neither re-relays in round 2 (they are
        already done with that slot)."""
        picks = [-1, 0, 0, -1, -1]
        result = run_session(line_network, picks, config=CCMConfig(frame_size=8))
        # Round 1: tags 1 & 2 transmit; round 2: tags 0 (inward) and 3
        # (outward) relay; reader hears in round 2 and silences; tag 4
        # learns slot 0 in round 2 but it is silenced before round 3.
        assert result.rounds == 2
        assert result.bitmap == Bitmap.from_indices(8, [0])
        sent = result.ledger.bits_sent
        # Tags 1 and 2 transmitted the data slot exactly once each.
        assert sent[1] >= 1 and sent[2] >= 1


class TestEnergyAccounting:
    def test_listen_bounded_by_frame(self, star_network):
        picks = [0, 1, 2, 3, 4]
        result = run_session(star_network, picks, config=CCMConfig(frame_size=8))
        f = 8
        rounds = result.rounds
        checking = sum(s.checking_slots_executed for s in result.round_stats)
        upper = rounds * f + rounds * f + checking  # data + indicator + checking
        assert np.all(result.ledger.bits_received <= upper)

    def test_indicator_broadcast_counted_for_all(self, star_network):
        result = run_session(star_network, [-1] * 5, config=CCMConfig(frame_size=8))
        # One round: every tag monitored 8 slots, received the 8-bit
        # indicator vector, and listened through the silent checking frame.
        l_c = default_checking_frame_length(star_network)
        expected = 8 + 8 + l_c
        assert np.allclose(result.ledger.bits_received, expected)

    def test_external_ledger_accumulates(self, star_network):
        ledger = EnergyLedger(5)
        run_session(star_network, [0, 1, 2, 3, 4],
                    config=CCMConfig(frame_size=8), ledger=ledger)
        first = ledger.bits_received.copy()
        run_session(star_network, [0, 1, 2, 3, 4],
                    config=CCMConfig(frame_size=8), ledger=ledger)
        assert np.all(ledger.bits_received >= 2 * first * 0.99)


class TestRandomNetworkEquivalence:
    """Theorem 1 on random deployments (the integration suite covers more)."""

    @pytest.mark.parametrize("probability", [1.0, 0.4])
    def test_bitmap_matches_traditional(self, small_network, probability):
        frame = 257
        picks = frame_picks(small_network.tag_ids, frame, probability, seed=5)
        result = run_session(small_network, picks, config=CCMConfig(frame_size=frame))
        reachable_ids = small_network.tag_ids[small_network.reachable_mask]
        reference = ideal_bitmap(reachable_ids, frame, probability, seed=5)
        assert result.bitmap == reference
        assert result.terminated_cleanly

    def test_rounds_bounded_by_tiers(self, small_network):
        picks = frame_picks(small_network.tag_ids, 128, 1.0, seed=6)
        result = run_session(small_network, picks, config=CCMConfig(frame_size=128))
        assert result.rounds <= small_network.num_tiers + 1


class TestLossyChannelSession:
    def test_lossy_session_runs_and_loses_at_most_everything(self, star_network):
        picks = [0, 1, 2, 3, 4]
        rng = np.random.default_rng(17)
        result = run_session(
            star_network,
            picks,
            config=CCMConfig(frame_size=8),
            channel=LossyChannel(loss=0.3),
            rng=rng,
        )
        full = Bitmap.from_indices(8, [0, 1, 2, 3, 4])
        assert result.bitmap.difference(full).is_empty()  # no phantom bits

    def test_zero_loss_lossy_equals_perfect(self, star_network):
        picks = [0, 1, 2, 3, 4]
        rng = np.random.default_rng(17)
        lossy = run_session(
            star_network, picks, config=CCMConfig(frame_size=8),
            channel=LossyChannel(loss=0.0), rng=rng,
        )
        perfect = run_session(star_network, picks, config=CCMConfig(frame_size=8))
        assert lossy.bitmap == perfect.bitmap
        assert lossy.rounds == perfect.rounds
