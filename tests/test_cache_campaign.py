"""Campaign-level memoization: hits, invalidation, crash-resume, CLI.

The trial classes here are module-level frozen dataclasses so they are
picklable (process backend) and reconstructable by ``cache verify``
(``tests.test_cache_campaign.FlakyTrial`` is importable because the
``tests`` package sits on ``sys.path`` under pytest).  Fault injection
goes through the module-level ``FLAKY_FAIL`` dict rather than a
dataclass field, so a faulted run and its clean resume share the exact
same cache keys.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import pathlib
import subprocess
import sys
import textwrap
from dataclasses import asdict, dataclass

import pytest

from repro.experiments.cli import main
from repro.obs.metrics import use_registry
from repro.sim.parallel import (
    Campaign,
    CampaignError,
    ExecutorConfig,
    stderr_ticker,
)
from repro.sim.plan import RunPlan
from repro.sim.runner import run_trials
from repro.store import CampaignCheckpoint, ResultStore, campaign_key, digest
from repro.store.cache import trial_config_of
from repro.store.fingerprint import code_fingerprint

FLAKY_FAIL = {"at": None}


@dataclass(frozen=True)
class FlakyTrial:
    """Deterministic synthetic trial with out-of-band fault injection."""

    width: float = 2.0

    def __call__(self, trial_index, seed):
        if FLAKY_FAIL["at"] == trial_index:
            raise RuntimeError(f"injected fault at trial {trial_index}")
        h = int(
            hashlib.sha256(f"{trial_index}:{seed}".encode()).hexdigest()[:12],
            16,
        )
        return {
            "value": h / 2**48 * self.width,
            "weight": float(trial_index + 1),
        }


@pytest.fixture(autouse=True)
def _no_injected_faults():
    FLAKY_FAIL["at"] = None
    yield
    FLAKY_FAIL["at"] = None


def _agg_digest(aggregates):
    return digest({name: asdict(agg) for name, agg in aggregates.items()})


# -- read-through / write-through ---------------------------------------------


class TestMemoization:
    def test_second_run_is_all_hits_and_bit_identical(self, tmp_path):
        store = ResultStore(tmp_path)
        uncached = Campaign(FlakyTrial(), 5, 42).run()
        first = Campaign(FlakyTrial(), 5, 42, plan=RunPlan(store=store)).run()
        second = Campaign(FlakyTrial(), 5, 42, plan=RunPlan(store=store)).run()
        assert first.cache_hits == 0
        assert first.n_computed == 5
        assert second.cache_hits == 5
        assert second.n_computed == 0
        # bit-identical, cache off / cold / hot
        assert first.aggregates == uncached.aggregates
        assert second.aggregates == uncached.aggregates
        assert second.per_trial == first.per_trial
        assert store.stats().n_entries == 5

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_hits_serve_every_backend(self, tmp_path, backend):
        store = ResultStore(tmp_path)
        baseline = Campaign(FlakyTrial(), 4, 7, plan=RunPlan(store=store)).run()
        cfg = (
            ExecutorConfig.serial()
            if backend == "serial"
            else ExecutorConfig(workers=2, backend=backend)
        )
        warm = Campaign(FlakyTrial(), 4, 7, plan=RunPlan(executor=cfg, store=store)).run()
        assert warm.cache_hits == 4
        assert warm.aggregates == baseline.aggregates

    def test_partial_warm_store_computes_only_the_rest(self, tmp_path):
        store = ResultStore(tmp_path)
        Campaign(FlakyTrial(), 3, 7, plan=RunPlan(store=store)).run()
        grown = Campaign(FlakyTrial(), 6, 7, plan=RunPlan(store=store)).run()
        assert grown.cache_hits == 3
        assert grown.n_computed == 3
        assert grown.aggregates == Campaign(FlakyTrial(), 6, 7).run().aggregates

    def test_run_trials_path_uses_the_store(self, tmp_path):
        store = ResultStore(tmp_path)
        cold = run_trials(FlakyTrial(), 4, 3, plan=RunPlan(store=store))
        warm = run_trials(FlakyTrial(), 4, 3, plan=RunPlan(store=store))
        plain = run_trials(FlakyTrial(), 4, 3)
        assert cold == warm == plain
        assert store.stats().n_entries == 4

    def test_obs_counters_track_hits_and_misses(self, tmp_path):
        store = ResultStore(tmp_path)
        with use_registry() as reg:
            Campaign(FlakyTrial(), 3, 1, plan=RunPlan(store=store)).run()
            Campaign(FlakyTrial(), 3, 1, plan=RunPlan(store=store)).run()
        assert reg.counter("campaign_cache_campaigns_total").value == 2.0
        assert reg.counter("campaign_cache_misses_total").value == 3.0
        assert reg.counter("campaign_cache_hits_total").value == 3.0

    def test_retried_successes_are_not_cached(self, tmp_path):
        # A trial that succeeds only on a retry ran under a retry seed,
        # which is not the seed named in its content address.
        store = ResultStore(tmp_path)
        FLAKY_FAIL["at"] = 1
        flaked = Campaign(
            FlakyTrial(),
            3,
            5,
            plan=RunPlan(
                executor=ExecutorConfig.serial(max_retries=0), store=store
            ),
        ).run()
        assert [f.trial_index for f in flaked.failures] == [1]
        assert store.stats().n_entries == 2  # trials 0 and 2 only
        FLAKY_FAIL["at"] = None
        healed = Campaign(FlakyTrial(), 3, 5, plan=RunPlan(store=store)).run()
        assert healed.cache_hits == 2
        assert healed.ok


# -- invalidation -------------------------------------------------------------


class TestInvalidation:
    def test_changed_config_misses(self, tmp_path):
        store = ResultStore(tmp_path)
        Campaign(FlakyTrial(width=2.0), 3, 1, plan=RunPlan(store=store)).run()
        other = Campaign(FlakyTrial(width=3.0), 3, 1, plan=RunPlan(store=store)).run()
        assert other.cache_hits == 0
        assert store.stats().n_entries == 6

    def test_changed_seed_misses(self, tmp_path):
        store = ResultStore(tmp_path)
        Campaign(FlakyTrial(), 3, 1, plan=RunPlan(store=store)).run()
        other = Campaign(FlakyTrial(), 3, 2, plan=RunPlan(store=store)).run()
        assert other.cache_hits == 0

    def test_changed_engine_misses(self, tmp_path):
        store = ResultStore(tmp_path)
        config = {"type": "probe.EngineProbe", "params": {}}

        def campaign(engine_id):
            def fn(k, seed):
                return {"v": float(seed % 97)}

            fn.engine = engine_id
            return Campaign(
                fn, 3, 7, plan=RunPlan(store=store), trial_config=config
            ).run()

        assert campaign("reference").cache_hits == 0
        assert campaign("reference").cache_hits == 3
        assert campaign("packed").cache_hits == 0

    def test_changed_code_fingerprint_misses(self, tmp_path, monkeypatch):
        store = ResultStore(tmp_path)
        Campaign(FlakyTrial(), 3, 1, plan=RunPlan(store=store)).run()
        monkeypatch.setattr(
            "repro.store.fingerprint.code_fingerprint",
            lambda packages=None: "deadbeefdeadbeef",
        )
        other = Campaign(FlakyTrial(), 3, 1, plan=RunPlan(store=store)).run()
        assert other.cache_hits == 0

    def test_uncacheable_trial_is_an_error(self, tmp_path):
        store = ResultStore(tmp_path)
        with pytest.raises(ValueError, match="not cacheable"):
            Campaign(lambda k, s: {"v": 1.0}, 2, 0, plan=RunPlan(store=store)).run()

    def test_resume_without_store_is_an_error(self):
        with pytest.raises(ValueError, match="requires a result store"):
            Campaign(FlakyTrial(), 2, 0, plan=RunPlan(resume=True)).run()


# -- crash-resume -------------------------------------------------------------


class TestCrashResume:
    def test_fault_injected_crash_resumes_bit_identical(self, tmp_path):
        store = ResultStore(tmp_path)
        baseline = Campaign(FlakyTrial(), 6, 42).run()

        FLAKY_FAIL["at"] = 3
        with pytest.raises(CampaignError):
            Campaign(
                FlakyTrial(),
                6,
                42,
                plan=RunPlan(
                    executor=ExecutorConfig.serial(fail_fast=True),
                    store=store,
                ),
            ).run()
        # trials 0..2 completed and were written through before the crash
        assert store.stats().n_entries == 3

        FLAKY_FAIL["at"] = None
        resumed = Campaign(
            FlakyTrial(), 6, 42, plan=RunPlan(store=store, resume=True)
        ).run()
        assert resumed.cache_hits == 3
        assert resumed.n_computed == 3
        assert resumed.aggregates == baseline.aggregates
        assert _agg_digest(resumed.aggregates) == _agg_digest(
            baseline.aggregates
        )

    def test_checkpoint_journal_records_completion(self, tmp_path):
        store = ResultStore(tmp_path)
        result = Campaign(FlakyTrial(), 4, 9, plan=RunPlan(store=store)).run()
        key = campaign_key(
            trial_config_of(FlakyTrial()), 4, 9, None, code_fingerprint()
        )
        state = CampaignCheckpoint(store.root, key).load()
        assert state.n_done == 4
        assert state.completed
        assert state.aggregates_digest == _agg_digest(result.aggregates)

    def test_sigkill_resume_bit_identical(self, tmp_path):
        """A literally SIGKILLed campaign resumes to the clean answer."""
        script = tmp_path / "campaign_script.py"
        script.write_text(
            textwrap.dedent(
                """
                import json, os, sys
                from dataclasses import asdict, dataclass

                from repro.sim.parallel import Campaign
                from repro.sim.plan import RunPlan
                from repro.store import ResultStore, digest


                @dataclass(frozen=True)
                class KillerTrial:
                    width: float = 1.5

                    def __call__(self, trial_index, seed):
                        if os.environ.get("KILL_AT") == str(trial_index):
                            os.kill(os.getpid(), 9)
                        return {"v": (seed % 1009) * self.width}


                store = ResultStore(sys.argv[1])
                resume = "--resume" in sys.argv
                result = Campaign(
                    KillerTrial(), 6, 42,
                    plan=RunPlan(store=store, resume=resume),
                ).run()
                print(json.dumps({
                    "hits": result.cache_hits,
                    "digest": digest({
                        n: asdict(a) for n, a in result.aggregates.items()
                    }),
                }))
                """
            ),
            encoding="utf-8",
        )
        src = str(pathlib.Path(__file__).resolve().parents[1] / "src")
        env = dict(os.environ)
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")

        def run_script(cache_dir, *extra, kill_at=None):
            run_env = dict(env)
            if kill_at is not None:
                run_env["KILL_AT"] = str(kill_at)
            return subprocess.run(
                [sys.executable, str(script), str(cache_dir), *extra],
                capture_output=True,
                text=True,
                env=run_env,
            )

        killed = run_script(tmp_path / "cache", kill_at=4)
        assert killed.returncode in (-9, 137), killed.stderr

        resumed = run_script(tmp_path / "cache", "--resume")
        assert resumed.returncode == 0, resumed.stderr
        resumed_out = json.loads(resumed.stdout)
        assert resumed_out["hits"] == 4  # trials 0..3 survived the kill

        clean = run_script(tmp_path / "fresh_cache")
        assert clean.returncode == 0, clean.stderr
        clean_out = json.loads(clean.stdout)
        assert clean_out["hits"] == 0
        assert resumed_out["digest"] == clean_out["digest"]


# -- verify against a real campaign store -------------------------------------


class TestVerifyCampaignStore:
    def test_verify_passes_on_campaign_results(self, tmp_path):
        store = ResultStore(tmp_path)
        Campaign(FlakyTrial(), 4, 11, plan=RunPlan(store=store)).run()
        outcomes = store.verify()
        assert len(outcomes) == 4
        assert all(o.ok for o in outcomes), [o.reason for o in outcomes]

    def test_cli_verify_passes(self, tmp_path, capsys):
        store = ResultStore(tmp_path)
        Campaign(FlakyTrial(), 3, 11, plan=RunPlan(store=store)).run()
        code = main(["cache", "verify", "--cache-dir", str(tmp_path)])
        assert code == 0
        assert "3/3" in capsys.readouterr().out


# -- ticker -------------------------------------------------------------------


class TestTickerHitReporting:
    def test_summary_separates_hits_from_computed(self, tmp_path):
        store = ResultStore(tmp_path)
        Campaign(FlakyTrial(), 3, 1, plan=RunPlan(store=store)).run()
        out = io.StringIO()
        Campaign(
            FlakyTrial(),
            3,
            1,
            plan=RunPlan(store=store),
            on_trial_done=stderr_ticker(3, stream=out),
        ).run()
        assert "done: 3 ok (3 hit, 0 computed), 0 failed" in out.getvalue()

    def test_cache_free_summary_keeps_historical_text(self):
        out = io.StringIO()
        Campaign(
            FlakyTrial(), 2, 1, on_trial_done=stderr_ticker(2, stream=out)
        ).run()
        text = out.getvalue()
        assert "done: 2 ok, 0 failed" in text
        assert "hit" not in text

    def test_three_argument_callbacks_still_work(self, tmp_path):
        store = ResultStore(tmp_path)
        Campaign(FlakyTrial(), 2, 1, plan=RunPlan(store=store)).run()
        seen = []
        Campaign(
            FlakyTrial(),
            2,
            1,
            plan=RunPlan(store=store),
            on_trial_done=lambda k, s, m: seen.append(k),
        ).run()
        assert sorted(seen) == [0, 1]


# -- the CLI flags and cache subcommands --------------------------------------


class TestCliCacheFlags:
    FIG3 = ["fig3", "--n-tags", "400", "--trials", "1", "--ranges", "6", "10"]

    def test_cache_dir_populates_and_serves(self, tmp_path, capsys):
        cache = tmp_path / "cache"
        assert main([*self.FIG3, "--cache-dir", str(cache)]) == 0
        n_after_first = ResultStore(cache).stats().n_entries
        assert n_after_first == 2  # two ranges x one trial
        first_out = capsys.readouterr().out
        assert main([*self.FIG3, "--cache-dir", str(cache)]) == 0
        second_out = capsys.readouterr().out
        assert ResultStore(cache).stats().n_entries == n_after_first
        # identical rendered report from the cached run
        assert second_out == first_out

    def test_no_cache_wins(self, tmp_path):
        cache = tmp_path / "cache"
        assert main([*self.FIG3, "--cache-dir", str(cache), "--no-cache"]) == 0
        assert not (cache / "objects").exists()

    def test_resume_flag_implies_cache(self, tmp_path, capsys):
        cache = tmp_path / "cache"
        main([*self.FIG3, "--cache-dir", str(cache)])
        capsys.readouterr()
        assert main([*self.FIG3, "--cache-dir", str(cache), "--resume"]) == 0
        assert "[cache] resuming from" in capsys.readouterr().err

    def test_cache_stats_and_ls(self, tmp_path, capsys):
        main([*self.FIG3, "--cache-dir", str(tmp_path)])
        capsys.readouterr()
        assert main(["cache", "stats", "--cache-dir", str(tmp_path)]) == 0
        stats_out = capsys.readouterr().out
        assert "entries:   2" in stats_out
        assert main(["cache", "ls", "--cache-dir", str(tmp_path)]) == 0
        ls_out = capsys.readouterr().out
        assert "PaperTrial" in ls_out

    def test_cache_stats_json(self, tmp_path, capsys):
        main([*self.FIG3, "--cache-dir", str(tmp_path)])
        capsys.readouterr()
        target = tmp_path / "stats.json"
        assert main(
            ["cache", "stats", "--cache-dir", str(tmp_path),
             "--json", str(target)]
        ) == 0
        data = json.loads(target.read_text(encoding="utf-8"))
        assert data["n_entries"] == 2

    def test_cache_gc(self, tmp_path, capsys):
        main([*self.FIG3, "--cache-dir", str(tmp_path)])
        capsys.readouterr()
        assert main(
            ["cache", "gc", "--cache-dir", str(tmp_path), "--older-than", "0"]
        ) == 0
        assert "removed 2" in capsys.readouterr().out
        assert ResultStore(tmp_path).stats().n_entries == 0

    def test_cache_gc_requires_criteria(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["cache", "gc", "--cache-dir", str(tmp_path)])


# -- storage format: bit-identity and migration --------------------------------


def _demote_to_json(store):
    """Rewrite every object as legacy ``.json``, as a pre-binary store.

    What a store written before this release looks like: same keys, same
    records, canonical-JSON payloads.
    """
    from repro.store.cache import RESULT_FORMAT
    from repro.store.canonical import canonical_json

    demoted = 0
    for entry in list(store.entries()):
        record = {
            "format": RESULT_FORMAT,
            "key": entry.key,
            "key_fields": entry.key_fields,
            "metrics": entry.metrics,
            "provenance": entry.provenance,
        }
        json_path = store.path_for(entry.key, "json")
        json_path.write_text(canonical_json(record) + "\n", encoding="utf-8")
        bin_path = store.path_for(entry.key, "bin")
        if bin_path.exists():
            bin_path.unlink()
        demoted += 1
    return demoted


class TestStorageFormatBitIdentity:
    def test_aggregates_bit_identical_across_json_binary_and_mixed(
        self, tmp_path
    ):
        """The storage format never shows up in a campaign's answer."""
        baseline = Campaign(FlakyTrial(), 6, 42).run()

        binary_store = ResultStore(tmp_path / "binary")
        cold = Campaign(
            FlakyTrial(), 6, 42, plan=RunPlan(store=binary_store)
        ).run()
        assert all(e.fmt == "bin" for e in binary_store.entries())

        # a legacy store: every record demoted to canonical JSON
        json_store = ResultStore(tmp_path / "json")
        Campaign(FlakyTrial(), 6, 42, plan=RunPlan(store=json_store)).run()
        assert _demote_to_json(json_store) == 6
        assert all(e.fmt == "json" for e in json_store.entries())

        # a half-migrated store: records split across both tiers
        mixed_store = ResultStore(tmp_path / "mixed")
        Campaign(FlakyTrial(), 6, 42, plan=RunPlan(store=mixed_store)).run()
        entries = sorted(mixed_store.entries(), key=lambda e: e.key)
        _demote_to_json(mixed_store)
        assert mixed_store.migrate(dry_run=True)["migrated"] == 6
        # promote half the records back to binary by hand
        from repro.store.binary import RECORD_TYPE_TRIAL, encode_record

        for entry in entries[:3]:
            raw = json.loads(
                mixed_store.path_for(entry.key, "json").read_text()
            )
            mixed_store.path_for(entry.key, "bin").write_bytes(
                encode_record(raw, RECORD_TYPE_TRIAL)
            )
            mixed_store.path_for(entry.key, "json").unlink()
        fmts = {e.fmt for e in mixed_store.entries()}
        assert fmts == {"bin", "json"}

        for store in (binary_store, json_store, mixed_store):
            warm = Campaign(
                FlakyTrial(), 6, 42, plan=RunPlan(store=store)
            ).run()
            assert warm.cache_hits == 6, store.root
            assert warm.aggregates == baseline.aggregates
            assert _agg_digest(warm.aggregates) == _agg_digest(
                cold.aggregates
            )

    def test_migrate_rewrites_in_place_and_preserves_metrics(self, tmp_path):
        from repro.store.canonical import canonical_bytes

        store = ResultStore(tmp_path)
        Campaign(FlakyTrial(), 5, 9, plan=RunPlan(store=store)).run()
        _demote_to_json(store)
        before = {e.key: e.metrics for e in store.entries()}
        json_bytes = sum(e.size_bytes for e in store.entries())

        dry = store.migrate(dry_run=True)
        assert dry["migrated"] == 5
        assert all(e.fmt == "json" for e in store.entries())  # untouched

        outcome = store.migrate()
        assert outcome["migrated"] == 5
        assert outcome["skipped"] == 0
        assert outcome["bytes_before"] == json_bytes
        assert outcome["bytes_after"] < json_bytes
        assert not list(store.objects_dir.glob("*/*.json"))
        after = {e.key: e.metrics for e in store.entries()}
        assert set(after) == set(before)
        for key in before:
            assert canonical_bytes(after[key]) == canonical_bytes(
                before[key]
            )
        # migrated records still verify byte-identically against re-runs
        outcomes = store.verify()
        assert len(outcomes) == 5
        assert all(o.ok for o in outcomes), [o.reason for o in outcomes]

    def test_migrate_cli_reports_and_stats_split_by_format(
        self, tmp_path, capsys
    ):
        store = ResultStore(tmp_path)
        Campaign(FlakyTrial(), 4, 3, plan=RunPlan(store=store)).run()
        _demote_to_json(store)
        assert main(
            ["cache", "migrate", "--dry-run", "--cache-dir", str(tmp_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "would migrate 4" in out
        stats = ResultStore(tmp_path).stats()
        assert stats.by_format["json"]["entries"] == 4
        assert "bin" not in stats.by_format
        assert main(["cache", "migrate", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "migrated 4" in out
        stats = ResultStore(tmp_path).stats()
        assert stats.by_format["bin"]["entries"] == 4
        assert "json" not in stats.by_format
        assert main(["cache", "ls", "--cache-dir", str(tmp_path)]) == 0
        assert "bin: 4" in capsys.readouterr().out

    def test_corrupt_legacy_record_is_skipped_not_destroyed(self, tmp_path):
        store = ResultStore(tmp_path)
        Campaign(FlakyTrial(), 2, 1, plan=RunPlan(store=store)).run()
        _demote_to_json(store)
        victim = sorted(store.objects_dir.glob("*/*.json"))[0]
        victim.write_text("{torn", encoding="utf-8")
        outcome = store.migrate()
        assert outcome == {
            "migrated": 1,
            "skipped": 1,
            "bytes_before": outcome["bytes_before"],
            "bytes_after": outcome["bytes_after"],
        }
        assert victim.exists()  # left in place for forensics

    def test_migrate_then_resume_sigkilled_campaign_bit_identical(
        self, tmp_path
    ):
        """The CI scenario: kill a campaign, migrate the store to
        binary, resume through the binary checkpoint journal, and land
        on the clean-run digest."""
        script = tmp_path / "campaign_script.py"
        script.write_text(
            textwrap.dedent(
                """
                import json, os, sys
                from dataclasses import asdict, dataclass

                from repro.sim.parallel import Campaign
                from repro.sim.plan import RunPlan
                from repro.store import ResultStore, digest


                @dataclass(frozen=True)
                class KillerTrial:
                    width: float = 1.5

                    def __call__(self, trial_index, seed):
                        if os.environ.get("KILL_AT") == str(trial_index):
                            os.kill(os.getpid(), 9)
                        return {"v": (seed % 1009) * self.width}


                store = ResultStore(sys.argv[1])
                resume = "--resume" in sys.argv
                result = Campaign(
                    KillerTrial(), 6, 42,
                    plan=RunPlan(store=store, resume=resume),
                ).run()
                print(json.dumps({
                    "hits": result.cache_hits,
                    "digest": digest({
                        n: asdict(a) for n, a in result.aggregates.items()
                    }),
                }))
                """
            ),
            encoding="utf-8",
        )
        src = str(pathlib.Path(__file__).resolve().parents[1] / "src")
        env = dict(os.environ)
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")

        def run_script(cache_dir, *extra, kill_at=None):
            run_env = dict(env)
            if kill_at is not None:
                run_env["KILL_AT"] = str(kill_at)
            return subprocess.run(
                [sys.executable, str(script), str(cache_dir), *extra],
                capture_output=True,
                text=True,
                env=run_env,
            )

        cache = tmp_path / "cache"
        killed = run_script(cache, kill_at=4)
        assert killed.returncode in (-9, 137), killed.stderr

        # the kill left 4 records; demote them to the legacy tier, then
        # migrate back — resume must not notice any of it
        store = ResultStore(cache)
        assert _demote_to_json(store) == 4
        outcome = store.migrate()
        assert outcome["migrated"] == 4

        resumed = run_script(cache, "--resume")
        assert resumed.returncode == 0, resumed.stderr
        resumed_out = json.loads(resumed.stdout)
        assert resumed_out["hits"] == 4

        clean = run_script(tmp_path / "fresh_cache")
        assert clean.returncode == 0, clean.stderr
        assert resumed_out["digest"] == json.loads(clean.stdout)["digest"]
