"""Tests for repro.protocols.search — wanted-tag search (Sec. III-B model)."""

import pytest

from repro.core.session import CCMConfig, run_session
from repro.protocols.search import (
    TagSearchProtocol,
    false_positive_probability,
    optimal_hash_count,
    search_frame_size,
)
from repro.protocols.transport import (
    CCMTransport,
    TraditionalTransport,
    search_masks,
)
from repro.sim.rng import TagHasher


class TestHashSlots:
    def test_k_slots_in_range(self):
        h = TagHasher(5)
        for tid in range(1, 50):
            slots = h.slots_of(tid, 97, 4)
            assert len(slots) == 4
            assert all(0 <= s < 97 for s in slots)

    def test_deterministic(self):
        assert TagHasher(3).slots_of(9, 64, 3) == TagHasher(3).slots_of(9, 64, 3)

    def test_positions_independent(self):
        slots = TagHasher(3).slots_of(9, 10_000, 6)
        assert len(set(slots)) > 1

    def test_validation(self):
        with pytest.raises(ValueError):
            TagHasher(1).slots_of(1, 64, 0)
        with pytest.raises(ValueError):
            TagHasher(1).slots_of(1, 0, 2)


class TestSearchMasks:
    def test_mask_bits_match_slots(self):
        masks = search_masks([7, 8], 64, 3, seed=2)
        hasher = TagHasher(2)
        for tid, mask in zip([7, 8], masks):
            expected = 0
            for s in hasher.slots_of(tid, 64, 3):
                expected |= 1 << s
            assert mask == expected


class TestSizingMath:
    def test_optimal_k_formula(self):
        # f/n = 8 -> k = round(8 ln 2) = 6
        assert optimal_hash_count(800, 100) == 6

    def test_optimal_k_at_least_one(self):
        assert optimal_hash_count(10, 1000) == 1

    def test_fp_decreases_with_frame(self):
        assert false_positive_probability(4096, 100, 4) < (
            false_positive_probability(512, 100, 4)
        )

    def test_fp_bounds(self):
        fp = false_positive_probability(1024, 200, 3)
        assert 0.0 < fp < 1.0

    def test_frame_size_meets_target(self):
        f = search_frame_size(500, 0.01)
        k = optimal_hash_count(f, 500)
        assert false_positive_probability(f, 500, k) <= 0.015

    def test_frame_size_fixed_k(self):
        f = search_frame_size(500, 0.01, k_hashes=2)
        assert false_positive_probability(f, 500, 2) <= 0.0105

    def test_validation(self):
        with pytest.raises(ValueError):
            search_frame_size(0, 0.1)
        with pytest.raises(ValueError):
            search_frame_size(100, 1.5)
        with pytest.raises(ValueError):
            optimal_hash_count(0, 10)
        with pytest.raises(ValueError):
            false_positive_probability(64, 10, 0)


class TestSearchOverTraditional:
    def test_present_wanted_always_found(self):
        present = list(range(1, 401))
        transport = TraditionalTransport(present)
        result = TagSearchProtocol(fp_target=0.01).search(
            transport, wanted_ids=[5, 50, 333], seed=1
        )
        assert result.present_candidates == [5, 50, 333]
        assert result.definitely_absent == []

    def test_absent_wanted_rejected(self):
        present = list(range(1, 401))
        wanted = [1000, 2000, 3000, 4000, 5000]
        transport = TraditionalTransport(present)
        result = TagSearchProtocol(fp_target=1e-4).search(
            transport, wanted, seed=2
        )
        # With a 1e-4 residual target, all five absentees are cleared.
        assert result.present_candidates == []
        assert sorted(result.definitely_absent) == wanted

    def test_mixed_wanted_list(self):
        present = list(range(1, 301))
        wanted = [10, 20, 9_999, 8_888]
        result = TagSearchProtocol(fp_target=1e-3).search(
            TraditionalTransport(present), wanted, seed=3
        )
        assert 10 in result.present_candidates
        assert 20 in result.present_candidates
        assert set(result.definitely_absent) <= {9_999, 8_888}

    def test_absence_verdicts_never_wrong(self):
        """A present tag can never be declared absent (its slots are busy
        by its own transmissions)."""
        present = list(range(1, 501))
        result = TagSearchProtocol(fp_target=0.05).search(
            TraditionalTransport(present), wanted_ids=present[:50], seed=4
        )
        assert result.definitely_absent == []

    def test_residual_fp_reported(self):
        present = list(range(1, 201))
        result = TagSearchProtocol(fp_target=0.01).search(
            TraditionalTransport(present), [1, 99999], seed=5
        )
        assert 0.0 <= result.residual_fp <= 0.011 * 1.5

    def test_empty_wanted_rejected(self):
        with pytest.raises(ValueError):
            TagSearchProtocol().search(TraditionalTransport([1]), [], seed=0)


class TestSearchOverCCM:
    def test_equivalent_to_traditional(self, small_network):
        """Theorem 1 extends to multi-bit picks: the CCM search bitmap
        equals the single-hop one, hence identical verdicts."""
        reachable = [
            int(t) for t in small_network.tag_ids[small_network.reachable_mask]
        ]
        wanted = reachable[:20] + [77_777, 88_888]
        ccm = TagSearchProtocol(fp_target=0.01).search(
            CCMTransport(small_network), wanted, seed=6
        )
        trad = TagSearchProtocol(fp_target=0.01).search(
            TraditionalTransport(reachable), wanted,
            n_present=small_network.n_tags, seed=6,
        )
        # Compare bitmaps of the first round directly.
        assert ccm.bitmaps[0].bits == trad.bitmaps[0].bits
        assert set(reachable[:20]) <= set(ccm.present_candidates)

    def test_session_level_multibit_masks(self, star_network):
        """The engine relays multi-bit picks: a 2-slot outer-tag mask
        arrives intact."""
        masks = [0, 0, 0, 0, 0b101]  # tier-2 tag sets slots 0 and 2
        result = run_session(
            star_network, masks=masks, config=CCMConfig(frame_size=8))
        assert list(result.bitmap.indices()) == [0, 2]
        assert result.rounds == 2

    def test_mask_validation(self, star_network):
        with pytest.raises(ValueError):
            run_session(
                star_network, masks=[0, 0, 0, 0, 1 << 9], config=CCMConfig(frame_size=8))
        with pytest.raises(ValueError):
            run_session(star_network, masks=[0], config=CCMConfig(frame_size=8))
