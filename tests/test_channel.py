"""Unit tests for repro.net.channel — slot-level propagation semantics
and the repro-channel-rng-v1 draw contract."""

import numpy as np
import pytest

import repro.net.channel as channel_mod
from repro.net.channel import (
    CHANNEL_RNG_CONTRACT,
    Channel,
    LossyChannel,
    PerfectChannel,
)


def _csr(adjacency):
    """Build (indptr, indices) from a list of neighbor lists."""
    indptr = np.zeros(len(adjacency) + 1, dtype=np.int64)
    chunks = []
    for i, neigh in enumerate(adjacency):
        indptr[i + 1] = indptr[i] + len(neigh)
        chunks.extend(neigh)
    return indptr, np.array(chunks, dtype=np.int64)


class TestPerfectChannel:
    def test_single_transmitter(self):
        indptr, indices = _csr([[1], [0, 2], [1]])
        heard = PerfectChannel().propagate([0b01, 0, 0], indptr, indices)
        assert heard == [0, 0b01, 0]

    def test_collision_merges_to_busy(self):
        # tags 0 and 2 both transmit slot 0; tag 1 hears one busy slot.
        indptr, indices = _csr([[1], [0, 2], [1]])
        heard = PerfectChannel().propagate([0b1, 0, 0b1], indptr, indices)
        assert heard[1] == 0b1

    def test_different_slots_merge_to_union(self):
        indptr, indices = _csr([[1], [0, 2], [1]])
        heard = PerfectChannel().propagate([0b01, 0, 0b10], indptr, indices)
        assert heard[1] == 0b11

    def test_out_of_range_not_heard(self):
        indptr, indices = _csr([[], []])
        heard = PerfectChannel().propagate([0b1, 0], indptr, indices)
        assert heard == [0, 0]

    def test_transmitter_hears_its_own_neighbors_only(self):
        indptr, indices = _csr([[1], [0], []])
        heard = PerfectChannel().propagate([0b1, 0b10, 0b100], indptr, indices)
        assert heard[0] == 0b10
        assert heard[1] == 0b1
        assert heard[2] == 0

    def test_reader_senses_union_of_tier1(self):
        tier1 = np.array([True, False, True])
        busy = PerfectChannel().reader_senses([0b01, 0b10, 0b100], tier1)
        assert busy == 0b101

    def test_reader_ignores_outer_tiers(self):
        tier1 = np.array([False, False])
        assert PerfectChannel().reader_senses([0b1, 0b1], tier1) == 0


class TestLossyChannel:
    def test_loss_validation(self):
        with pytest.raises(ValueError):
            LossyChannel(loss=1.0)
        with pytest.raises(ValueError):
            LossyChannel(loss=-0.1)

    def test_zero_loss_equals_perfect(self):
        indptr, indices = _csr([[1], [0, 2], [1]])
        transmit = [0b101, 0, 0b10]
        rng = np.random.default_rng(0)
        lossy = LossyChannel(loss=0.0).propagate(transmit, indptr, indices, rng)
        perfect = PerfectChannel().propagate(transmit, indptr, indices)
        assert lossy == perfect

    def test_requires_rng(self):
        indptr, indices = _csr([[1], [0]])
        with pytest.raises(ValueError):
            LossyChannel(loss=0.5).propagate([0b1, 0], indptr, indices)
        with pytest.raises(ValueError):
            LossyChannel(loss=0.5).reader_senses([0b1], np.array([True]))

    def test_high_loss_drops_most_bits(self):
        indptr, indices = _csr([[1], [0]])
        rng = np.random.default_rng(42)
        heard_count = 0
        for _ in range(300):
            heard = LossyChannel(loss=0.9).propagate(
                [0b1, 0], indptr, indices, rng
            )
            heard_count += heard[1]
        assert 5 <= heard_count <= 70  # ~10% of 300

    def test_redundant_transmitters_improve_reliability(self):
        """Two transmitters of the same slot give two independent chances."""
        indptr, indices = _csr([[2], [2], [0, 1]])
        rng = np.random.default_rng(7)
        single = 0
        double = 0
        for _ in range(500):
            single += LossyChannel(loss=0.5).propagate(
                [0b1, 0, 0], indptr, indices, rng
            )[2]
            double += LossyChannel(loss=0.5).propagate(
                [0b1, 0b1, 0], indptr, indices, rng
            )[2]
        assert double > single

    def test_reader_senses_with_loss(self):
        rng = np.random.default_rng(3)
        tier1 = np.array([True])
        hits = sum(
            LossyChannel(loss=0.5).reader_senses([0b1], tier1, rng)
            for _ in range(400)
        )
        assert 120 <= hits <= 280


def _pack_masks(masks, frame_size):
    from repro.core.engine import masks_to_words

    return masks_to_words(masks, frame_size)


def _unpack_row(row):
    from repro.core.engine import words_to_int

    return words_to_int(row)


class TestChannelRngContract:
    """The packed lossy interface batches the *same* draw stream the
    scalar big-int interface consumes one call at a time."""

    def test_contract_version_exported(self):
        assert CHANNEL_RNG_CONTRACT == "repro-channel-rng-v1"

    def test_is_perfect_flags(self):
        assert PerfectChannel().is_perfect
        assert LossyChannel(0.0).is_perfect
        assert not LossyChannel(0.1).is_perfect

        class SubPerfect(PerfectChannel):
            pass

        class SubLossy(LossyChannel):
            pass

        # Strict type checks: subclasses may override propagation, so
        # they never qualify for the silent slot-major fast path.
        assert not SubPerfect().is_perfect
        assert not SubLossy(0.0).is_perfect
        assert not Channel.is_perfect.fget(object())

    @pytest.mark.parametrize("loss", [0.2, 0.5, 0.8])
    @pytest.mark.parametrize("frame_size", [37, 64, 257])
    def test_propagate_packed_matches_scalar_stream(self, loss, frame_size):
        rng = np.random.default_rng(frame_size)
        n = 60
        adjacency = [
            sorted(
                set(rng.integers(0, n, size=rng.integers(0, 5)).tolist())
                - {i}
            )
            for i in range(n)
        ]
        indptr, indices = _csr(adjacency)
        masks = [
            int(rng.integers(0, 2 ** min(frame_size, 60)))
            if rng.random() < 0.7
            else 0
            for _ in range(n)
        ]
        ch = LossyChannel(loss)
        rng_a = np.random.default_rng(99)
        rng_b = np.random.default_rng(99)
        scalar = ch.propagate(masks, indptr, indices, rng_a)
        packed = ch.propagate_packed(
            _pack_masks(masks, frame_size), indptr, indices, rng_b
        )
        assert [_unpack_row(row) for row in packed] == scalar
        # Both consumed exactly the same number of draws.
        assert rng_a.random() == rng_b.random()

    def test_propagate_packed_chunk_boundaries_preserve_stream(
        self, monkeypatch
    ):
        """Chunked batched draws must read the stream exactly as one big
        draw would — chunk boundaries land on whole edges."""
        monkeypatch.setattr(channel_mod, "_LOSSY_DRAW_CHUNK", 13)
        rng = np.random.default_rng(5)
        n = 40
        adjacency = [
            sorted(
                set(rng.integers(0, n, size=rng.integers(0, 6)).tolist())
                - {i}
            )
            for i in range(n)
        ]
        indptr, indices = _csr(adjacency)
        masks = [
            int(rng.integers(0, 2**50)) if rng.random() < 0.8 else 0
            for _ in range(n)
        ]
        ch = LossyChannel(0.4)
        rng_a = np.random.default_rng(31)
        rng_b = np.random.default_rng(31)
        scalar = ch.propagate(masks, indptr, indices, rng_a)
        packed = ch.propagate_packed(
            _pack_masks(masks, 64), indptr, indices, rng_b
        )
        assert [_unpack_row(row) for row in packed] == scalar
        assert rng_a.random() == rng_b.random()

    @pytest.mark.parametrize("loss", [0.2, 0.5])
    def test_reader_senses_packed_matches_scalar_stream(self, loss):
        rng = np.random.default_rng(77)
        n, frame_size = 50, 128
        masks = [
            int(rng.integers(0, 2**60)) if rng.random() < 0.6 else 0
            for _ in range(n)
        ]
        tier1 = rng.random(n) < 0.3
        ch = LossyChannel(loss)
        rng_a = np.random.default_rng(13)
        rng_b = np.random.default_rng(13)
        scalar = ch.reader_senses(masks, tier1, rng_a)
        packed = ch.reader_senses_packed(
            _pack_masks(masks, frame_size), tier1, rng_b
        )
        assert _unpack_row(packed) == scalar
        assert rng_a.random() == rng_b.random()

    def test_zero_loss_consumes_no_draws(self):
        indptr, indices = _csr([[1], [0, 2], [1]])
        masks = [0b101, 0, 0b11]
        ch = LossyChannel(0.0)
        rng = np.random.default_rng(8)
        before = rng.bit_generator.state
        ch.propagate(masks, indptr, indices, rng)
        ch.propagate_packed(_pack_masks(masks, 8), indptr, indices, rng)
        ch.reader_senses(masks, np.array([True, False, True]), rng)
        ch.reader_senses_packed(
            _pack_masks(masks, 8), np.array([True, False, True]), rng
        )
        assert rng.bit_generator.state == before
