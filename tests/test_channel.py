"""Unit tests for repro.net.channel — slot-level propagation semantics."""

import numpy as np
import pytest

from repro.net.channel import LossyChannel, PerfectChannel


def _csr(adjacency):
    """Build (indptr, indices) from a list of neighbor lists."""
    indptr = np.zeros(len(adjacency) + 1, dtype=np.int64)
    chunks = []
    for i, neigh in enumerate(adjacency):
        indptr[i + 1] = indptr[i] + len(neigh)
        chunks.extend(neigh)
    return indptr, np.array(chunks, dtype=np.int64)


class TestPerfectChannel:
    def test_single_transmitter(self):
        indptr, indices = _csr([[1], [0, 2], [1]])
        heard = PerfectChannel().propagate([0b01, 0, 0], indptr, indices)
        assert heard == [0, 0b01, 0]

    def test_collision_merges_to_busy(self):
        # tags 0 and 2 both transmit slot 0; tag 1 hears one busy slot.
        indptr, indices = _csr([[1], [0, 2], [1]])
        heard = PerfectChannel().propagate([0b1, 0, 0b1], indptr, indices)
        assert heard[1] == 0b1

    def test_different_slots_merge_to_union(self):
        indptr, indices = _csr([[1], [0, 2], [1]])
        heard = PerfectChannel().propagate([0b01, 0, 0b10], indptr, indices)
        assert heard[1] == 0b11

    def test_out_of_range_not_heard(self):
        indptr, indices = _csr([[], []])
        heard = PerfectChannel().propagate([0b1, 0], indptr, indices)
        assert heard == [0, 0]

    def test_transmitter_hears_its_own_neighbors_only(self):
        indptr, indices = _csr([[1], [0], []])
        heard = PerfectChannel().propagate([0b1, 0b10, 0b100], indptr, indices)
        assert heard[0] == 0b10
        assert heard[1] == 0b1
        assert heard[2] == 0

    def test_reader_senses_union_of_tier1(self):
        tier1 = np.array([True, False, True])
        busy = PerfectChannel().reader_senses([0b01, 0b10, 0b100], tier1)
        assert busy == 0b101

    def test_reader_ignores_outer_tiers(self):
        tier1 = np.array([False, False])
        assert PerfectChannel().reader_senses([0b1, 0b1], tier1) == 0


class TestLossyChannel:
    def test_loss_validation(self):
        with pytest.raises(ValueError):
            LossyChannel(loss=1.0)
        with pytest.raises(ValueError):
            LossyChannel(loss=-0.1)

    def test_zero_loss_equals_perfect(self):
        indptr, indices = _csr([[1], [0, 2], [1]])
        transmit = [0b101, 0, 0b10]
        rng = np.random.default_rng(0)
        lossy = LossyChannel(loss=0.0).propagate(transmit, indptr, indices, rng)
        perfect = PerfectChannel().propagate(transmit, indptr, indices)
        assert lossy == perfect

    def test_requires_rng(self):
        indptr, indices = _csr([[1], [0]])
        with pytest.raises(ValueError):
            LossyChannel(loss=0.5).propagate([0b1, 0], indptr, indices)
        with pytest.raises(ValueError):
            LossyChannel(loss=0.5).reader_senses([0b1], np.array([True]))

    def test_high_loss_drops_most_bits(self):
        indptr, indices = _csr([[1], [0]])
        rng = np.random.default_rng(42)
        heard_count = 0
        for _ in range(300):
            heard = LossyChannel(loss=0.9).propagate(
                [0b1, 0], indptr, indices, rng
            )
            heard_count += heard[1]
        assert 5 <= heard_count <= 70  # ~10% of 300

    def test_redundant_transmitters_improve_reliability(self):
        """Two transmitters of the same slot give two independent chances."""
        indptr, indices = _csr([[2], [2], [0, 1]])
        rng = np.random.default_rng(7)
        single = 0
        double = 0
        for _ in range(500):
            single += LossyChannel(loss=0.5).propagate(
                [0b1, 0, 0], indptr, indices, rng
            )[2]
            double += LossyChannel(loss=0.5).propagate(
                [0b1, 0b1, 0], indptr, indices, rng
            )[2]
        assert double > single

    def test_reader_senses_with_loss(self):
        rng = np.random.default_rng(3)
        tier1 = np.array([True])
        hits = sum(
            LossyChannel(loss=0.5).reader_senses([0b1], tier1, rng)
            for _ in range(400)
        )
        assert 120 <= hits <= 280
