"""Tests for repro.sim.runner — trials, sweeps, aggregation."""

import pytest

from repro.sim.runner import (
    TrialAggregate,
    aggregate_metrics,
    run_trials,
    sweep,
)


class TestTrialAggregate:
    def test_from_samples(self):
        agg = TrialAggregate.from_samples("x", [1.0, 2.0, 3.0])
        assert agg.mean == 2.0
        assert agg.minimum == 1.0
        assert agg.maximum == 3.0
        assert agg.count == 3
        # Sample (Bessel-corrected) std: var = ((-1)² + 0² + 1²) / (3 - 1).
        assert agg.std == pytest.approx(1.0)

    def test_single_sample_zero_std(self):
        agg = TrialAggregate.from_samples("x", [5.0])
        assert agg.std == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            TrialAggregate.from_samples("x", [])


class TestAggregateMetrics:
    def test_keyed_by_metric(self):
        agg = aggregate_metrics([{"a": 1, "b": 2}, {"a": 3, "b": 4}])
        assert agg["a"].mean == 2.0
        assert agg["b"].mean == 3.0

    def test_mismatched_keys_rejected(self):
        with pytest.raises(ValueError):
            aggregate_metrics([{"a": 1}, {"b": 2}])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            aggregate_metrics([])


class TestRunTrials:
    def test_seeds_are_distinct_and_deterministic(self):
        seen = []

        def trial(k, seed):
            seen.append(seed)
            return {"seed": float(seed)}

        run_trials(trial, 5, base_seed=1)
        assert len(set(seen)) == 5
        first = list(seen)
        seen.clear()
        run_trials(trial, 5, base_seed=1)
        assert seen == first

    def test_different_base_seed_different_streams(self):
        def trial(k, seed):
            return {"seed": float(seed)}

        a = run_trials(trial, 3, base_seed=1)["seed"].mean
        b = run_trials(trial, 3, base_seed=2)["seed"].mean
        assert a != b

    def test_validation(self):
        with pytest.raises(ValueError):
            run_trials(lambda k, s: {"x": 1.0}, 0)


class TestSweep:
    def _factory(self, value):
        def trial(k, seed):
            return {"double": 2.0 * value, "noise": float(seed % 7)}

        return trial

    def test_series_extraction(self):
        result = sweep("v", [1.0, 2.0, 3.0], self._factory, n_trials=2)
        assert result.series("double") == [2.0, 4.0, 6.0]
        assert result.values == [1.0, 2.0, 3.0]

    def test_series_statistics(self):
        result = sweep("v", [1.0], self._factory, n_trials=4)
        assert result.series("noise", "minimum")[0] <= result.series(
            "noise", "maximum"
        )[0]

    def test_unknown_metric_raises(self):
        result = sweep("v", [1.0], self._factory, n_trials=1)
        with pytest.raises(KeyError):
            result.series("nope")

    def test_metric_names(self):
        result = sweep("v", [1.0], self._factory, n_trials=1)
        assert result.metric_names() == ["double", "noise"]

    def test_as_rows(self):
        result = sweep("v", [1.0, 2.0], self._factory, n_trials=1)
        rows = result.as_rows(["double"])
        assert rows == [[2.0, 4.0]]

    def test_point_independence(self):
        """Adding axis points must not perturb earlier points' seeds."""
        short = sweep("v", [1.0], self._factory, n_trials=3)
        long = sweep("v", [1.0, 2.0], self._factory, n_trials=3)
        assert short.series("noise") == long.series("noise")[:1]

    def test_empty_sweep(self):
        result = sweep("v", [], self._factory, n_trials=1)
        assert result.values == []
        assert result.metric_names() == []
