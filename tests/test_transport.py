"""Tests for repro.protocols.transport — the frame-transport abstraction."""

import numpy as np
import pytest

from repro.net.geometry import Point
from repro.net.topology import Reader
from repro.protocols.transport import (
    CCMTransport,
    MultiReaderCCMTransport,
    TraditionalTransport,
    frame_picks,
    ideal_bitmap,
)


class TestFramePicks:
    def test_full_participation(self):
        picks = frame_picks([1, 2, 3], 16, 1.0, seed=0)
        assert all(0 <= s < 16 for s in picks)

    def test_zero_participation(self):
        assert frame_picks([1, 2, 3], 16, 0.0, seed=0) == [-1, -1, -1]

    def test_deterministic(self):
        assert frame_picks([5, 6], 100, 0.5, 9) == frame_picks([5, 6], 100, 0.5, 9)

    def test_partial_participation_rate(self):
        ids = list(range(1, 5001))
        picks = frame_picks(ids, 64, 0.3, seed=2)
        rate = sum(s >= 0 for s in picks) / len(picks)
        assert abs(rate - 0.3) < 0.03

    def test_ideal_bitmap_matches_picks(self):
        ids = [10, 20, 30]
        picks = frame_picks(ids, 32, 1.0, seed=4)
        bm = ideal_bitmap(ids, 32, 1.0, seed=4)
        assert sorted(set(picks)) == list(bm.indices())


class TestTraditionalTransport:
    def test_bitmap_is_union_of_picks(self):
        transport = TraditionalTransport([1, 2, 3, 4])
        outcome = transport.run_frame(16, 1.0, seed=7)
        assert outcome.bitmap == ideal_bitmap([1, 2, 3, 4], 16, 1.0, 7)

    def test_slots_counted(self):
        transport = TraditionalTransport([1, 2])
        transport.run_frame(16, 1.0, seed=1)
        transport.run_frame(16, 1.0, seed=2)
        assert transport.slots.total_slots == 32
        assert transport.frames_run == 2

    def test_energy_one_bit_per_participant(self):
        transport = TraditionalTransport([1, 2, 3])
        transport.run_frame(16, 1.0, seed=1)
        assert transport.ledger.bits_sent.tolist() == [1.0, 1.0, 1.0]
        assert transport.ledger.bits_received.sum() == 0.0

    def test_non_participants_send_nothing(self):
        transport = TraditionalTransport(list(range(1, 101)))
        transport.run_frame(64, 0.0, seed=1)
        assert transport.ledger.bits_sent.sum() == 0.0


class TestCCMTransport:
    def test_equivalence_with_traditional(self, small_network):
        ccm = CCMTransport(small_network)
        out = ccm.run_frame(128, 1.0, seed=3)
        reachable = small_network.tag_ids[small_network.reachable_mask]
        assert out.bitmap == ideal_bitmap(reachable, 128, 1.0, 3)
        assert out.terminated_cleanly

    def test_sessions_recorded(self, small_network):
        ccm = CCMTransport(small_network)
        ccm.run_frame(64, 0.5, seed=1)
        ccm.run_frame(64, 0.5, seed=2)
        assert len(ccm.sessions) == 2
        assert ccm.frames_run == 2

    def test_ledger_accumulates_across_frames(self, small_network):
        ccm = CCMTransport(small_network)
        ccm.run_frame(64, 1.0, seed=1)
        after_one = ccm.ledger.bits_received.sum()
        ccm.run_frame(64, 1.0, seed=2)
        assert ccm.ledger.bits_received.sum() > after_one

    def test_indicator_ablation_passthrough(self, small_network):
        ccm = CCMTransport(small_network, use_indicator_vector=False)
        out = ccm.run_frame(64, 1.0, seed=1)
        reachable = small_network.tag_ids[small_network.reachable_mask]
        assert out.bitmap == ideal_bitmap(reachable, 64, 1.0, 1)

    def test_tag_ids_exposed(self, small_network):
        ccm = CCMTransport(small_network)
        assert np.array_equal(ccm.tag_ids, small_network.tag_ids)


class TestMultiReaderTransport:
    def test_covers_split_field(self):
        positions = np.array(
            [[1.0, 0.0], [2.0, 0.0], [21.0, 0.0], [22.0, 0.0]]
        )
        readers = [
            Reader(Point(0, 0), 5.0, 1.5),
            Reader(Point(20, 0), 5.0, 1.5),
        ]
        transport = MultiReaderCCMTransport(
            positions, readers, tag_range=1.2
        )
        out = transport.run_frame(32, 1.0, seed=5)
        assert out.bitmap == ideal_bitmap([1, 2, 3, 4], 32, 1.0, 5)

    def test_requires_reader(self):
        positions = np.array([[1.0, 0.0]])
        transport = MultiReaderCCMTransport(positions, [], tag_range=1.0)
        with pytest.raises(ValueError):
            transport.run_frame(8, 1.0, seed=0)


class TestOptionalTransportMethods:
    def test_multireader_lacks_search_frames(self):
        positions = np.array([[1.0, 0.0]])
        transport = MultiReaderCCMTransport(
            positions, [Reader(Point(0, 0), 5.0, 1.5)], tag_range=1.0
        )
        with pytest.raises(NotImplementedError):
            transport.run_search_frame(16, 2, seed=0)
        with pytest.raises(NotImplementedError):
            transport.run_pick_frame(16, [0])

    def test_pick_frame_traditional(self):
        transport = TraditionalTransport([1, 2, 3])
        out = transport.run_pick_frame(8, [0, 0, 5])
        assert list(out.bitmap.indices()) == [0, 5]
        assert transport.ledger.bits_sent.tolist() == [1.0, 1.0, 1.0]

    def test_pick_frame_silent_tags(self):
        transport = TraditionalTransport([1, 2])
        out = transport.run_pick_frame(8, [-1, 3])
        assert list(out.bitmap.indices()) == [3]
        assert transport.ledger.bits_sent.tolist() == [0.0, 1.0]

    def test_pick_frame_length_check(self):
        with pytest.raises(ValueError):
            TraditionalTransport([1, 2]).run_pick_frame(8, [0])

    def test_pick_frame_ccm_equivalence(self, small_network):
        """External picks over CCM equal the single-hop union (Theorem 1
        for arbitrary pick distributions)."""
        import numpy as _np

        rng = _np.random.default_rng(3)
        picks = rng.integers(0, 64, size=small_network.n_tags).tolist()
        ccm = CCMTransport(small_network)
        out = ccm.run_pick_frame(64, picks)
        reachable = small_network.reachable_mask
        expected = sorted(
            {picks[i] for i in range(small_network.n_tags) if reachable[i]}
        )
        assert list(out.bitmap.indices()) == expected
