"""The trial-major batched kernel vs the per-trial packed reference.

The executable reference for ``run_session_batch`` is the per-trial
packed engine: under the ``repro-batch-rng-v1`` contract every trial in
a batch must be bit-identical to running it alone with the same
generator.  The grid here sweeps topology x frame size x loss and
compares every observable field (bitmap, rounds, slot accounting, round
stats, energy floats).  Also covered: trial-order independence, tail
batches through the campaign engine, the ``engine="batch"`` adapter,
and the RNG-contract fingerprint coupling.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.core.batch as batch_mod
from repro.core.batch import (
    BATCH_RNG_CONTRACT,
    batch_trial_rngs,
    run_session_batch,
)
from repro.core.engine import available_engines
from repro.core.session import CCMConfig, run_session
from repro.net.channel import LossyChannel
from repro.sim.parallel import Campaign, ExecutorConfig
from repro.sim.plan import RunPlan
from repro.sim.runner import trial_seed

FRAME_SIZES = (37, 64, 257)
LOSSES = (0.0, 0.2, 0.5)
B = 4
BASE_SEED = 424242


def draw_masks(rng, n, f, participation=0.8):
    """The shared mask-draw: participation uniform + slot pick per tag."""
    p = rng.random(n)
    s = rng.integers(0, f, size=n)
    return [
        int(1 << int(s[i])) if p[i] < participation else 0 for i in range(n)
    ]


def run_reference(network, f, loss, seed):
    """One trial through the per-trial packed engine (the contract's
    reference path), drawing masks and channel losses from one
    generator exactly as the batched path must."""
    rng = np.random.default_rng(seed)
    masks = draw_masks(rng, network.n_tags, f)
    config = CCMConfig(frame_size=f)
    if loss > 0.0:
        return run_session(
            network, masks=masks, config=config,
            channel=LossyChannel(loss=loss), rng=rng, engine="packed",
        )
    return run_session(network, masks=masks, config=config, engine="packed")


def run_batched(network, f, loss, seeds):
    rngs = [np.random.default_rng(s) for s in seeds]
    masks_batch = [draw_masks(rng, network.n_tags, f) for rng in rngs]
    config = CCMConfig(frame_size=f)
    if loss > 0.0:
        return run_session_batch(
            network, masks_batch, config,
            channel=LossyChannel(loss=loss), rngs=rngs,
        )
    return run_session_batch(network, masks_batch, config)


def assert_sessions_identical(ref, out):
    assert out.bitmap == ref.bitmap
    assert out.rounds == ref.rounds
    assert out.slots == ref.slots
    assert out.terminated_cleanly == ref.terminated_cleanly
    assert out.round_stats == ref.round_stats
    np.testing.assert_array_equal(
        out.ledger.bits_sent, ref.ledger.bits_sent
    )
    np.testing.assert_array_equal(
        out.ledger.bits_received, ref.ledger.bits_received
    )


@pytest.fixture(params=["small", "line", "star"])
def grid_network(request, small_network, line_network, star_network):
    return {
        "small": small_network, "line": line_network, "star": star_network
    }[request.param]


class TestEquivalenceGrid:
    @pytest.mark.parametrize("f", FRAME_SIZES)
    @pytest.mark.parametrize("loss", LOSSES)
    def test_batched_matches_per_trial_packed(self, grid_network, f, loss):
        seeds = [trial_seed(BASE_SEED, k) for k in range(B)]
        batched = run_batched(grid_network, f, loss, seeds)
        assert len(batched) == B
        for seed, out in zip(seeds, batched):
            ref = run_reference(grid_network, f, loss, seed)
            assert_sessions_identical(ref, out)

    def test_forced_tag_major_on_perfect_channel(
        self, small_network, monkeypatch
    ):
        """The perfect channel normally routes slot-major; forcing the
        word-parallel tag-major path must not change a single bit."""
        seeds = [trial_seed(7, k) for k in range(B)]
        slot_major = run_batched(small_network, 64, 0.0, seeds)
        monkeypatch.setattr(batch_mod, "SLOT_MAJOR_MAX_ADJ_BYTES", 0)
        tag_major = run_batched(small_network, 64, 0.0, seeds)
        for a, b in zip(slot_major, tag_major):
            assert_sessions_identical(a, b)


class TestTrialOrderIndependence:
    """A trial's bits do not depend on its batch neighbours."""

    @pytest.mark.parametrize("loss", (0.0, 0.3))
    def test_sub_batch_replays_same_bits(self, small_network, loss):
        seeds = [trial_seed(99, k) for k in range(5)]
        full = run_batched(small_network, 64, loss, seeds)
        sub = run_batched(
            small_network, 64, loss, [seeds[2], seeds[4]]
        )
        assert_sessions_identical(full[2], sub[0])
        assert_sessions_identical(full[4], sub[1])

    def test_b1_equals_solo(self, small_network):
        seed = trial_seed(5, 3)
        [alone] = run_batched(small_network, 37, 0.2, [seed])
        ref = run_reference(small_network, 37, 0.2, seed)
        assert_sessions_identical(ref, alone)

    def test_batch_trial_rngs_matches_campaign_stream(self):
        rngs = batch_trial_rngs(BASE_SEED, [0, 3, 7])
        for k, rng in zip([0, 3, 7], rngs):
            expected = np.random.default_rng(trial_seed(BASE_SEED, k))
            assert rng.random() == expected.random()


class TestBatchEngineAdapter:
    def test_registered(self):
        assert "batch" in available_engines()

    @pytest.mark.parametrize("loss", (0.0, 0.2))
    def test_engine_batch_equals_packed(self, small_network, loss):
        rng_a = np.random.default_rng(11)
        masks = draw_masks(rng_a, small_network.n_tags, 64)
        rng_b = np.random.default_rng(11)
        draw_masks(rng_b, small_network.n_tags, 64)  # same rng position
        config = CCMConfig(frame_size=64)
        channel = LossyChannel(loss=loss) if loss > 0.0 else None
        ref = run_session(
            small_network, masks=masks, config=config, channel=channel,
            rng=rng_a if loss > 0.0 else None, engine="packed",
        )
        out = run_session(
            small_network, masks=masks, config=config, channel=channel,
            rng=rng_b if loss > 0.0 else None, engine="batch",
        )
        assert_sessions_identical(ref, out)


class TestValidation:
    def test_empty_batch_rejected(self, small_network):
        with pytest.raises(ValueError, match="at least one"):
            run_session_batch(
                small_network, [], CCMConfig(frame_size=16)
            )

    def test_rng_count_mismatch_rejected(self, small_network):
        masks = [[0] * small_network.n_tags] * 2
        with pytest.raises(ValueError, match="generators"):
            run_session_batch(
                small_network, masks, CCMConfig(frame_size=16),
                channel=LossyChannel(loss=0.1),
                rngs=[np.random.default_rng(0)],
            )

    def test_out_of_range_mask_rejected(self, small_network):
        masks = [[0] * small_network.n_tags]
        masks[0][3] = 1 << 20
        with pytest.raises(ValueError, match="outside"):
            run_session_batch(
                small_network, masks, CCMConfig(frame_size=16)
            )


class TestCampaignBatchDispatch:
    """plan.batch=B stacks trials per task, tails included, results
    bit-identical to per-trial dispatch."""

    def _trial(self):
        from repro.experiments.common import SessionBatchTrial

        return SessionBatchTrial(
            tag_range=6.0, n_tags=250, frame_size=64,
            participation=0.7, topology_seed=3,
        )

    def _lossy_trial(self):
        from repro.experiments.common import SessionBatchTrial

        return SessionBatchTrial(
            tag_range=6.0, n_tags=250, frame_size=64,
            participation=0.7, loss=0.25, topology_seed=3,
        )

    def test_run_batch_equals_call_per_trial(self):
        for trial in (self._trial(), self._lossy_trial()):
            seeds = [trial_seed(21, k) for k in range(3)]
            batched = trial.run_batch([0, 1, 2], seeds)
            solo = [trial(k, s) for k, s in zip([0, 1, 2], seeds)]
            assert batched == solo

    def test_tail_batch_campaign_matches_serial(self):
        trial = self._trial()
        per_trial = Campaign(trial, 7, 13).run()
        # batch=3 over 7 trials -> tasks of 3, 3 and a tail of 1
        batched = Campaign(
            trial, 7, 13,
            plan=RunPlan(batch=3, executor=ExecutorConfig.serial()),
        ).run()
        assert batched.ok
        assert batched.per_trial == per_trial.per_trial
        assert batched.aggregates == per_trial.aggregates

    def test_batched_thread_pool_matches_serial(self):
        trial = self._lossy_trial()
        per_trial = Campaign(trial, 5, 17).run()
        pooled = Campaign(
            trial, 5, 17,
            plan=RunPlan(
                batch=2,
                executor=ExecutorConfig(workers=2, backend="thread"),
            ),
        ).run()
        assert pooled.ok
        assert pooled.per_trial == per_trial.per_trial

    def test_batch_flag_inert_without_run_batch_hook(self):
        def plain(trial_index, seed):
            return {"v": float(seed % 101)}

        baseline = Campaign(plain, 5, 3).run()
        batched = Campaign(
            plain, 5, 3,
            plan=RunPlan(batch=4, executor=ExecutorConfig.serial()),
        ).run()
        assert batched.per_trial == baseline.per_trial

    def test_failing_run_batch_falls_back_per_trial(self):
        class BrokenBatch:
            """run_batch always explodes; per-trial path must rescue."""

            engine = "packed"

            def __call__(self, trial_index, seed):
                return {"v": float(seed % 101)}

            def run_batch(self, indices, seeds):
                raise RuntimeError("batched kernel exploded")

        trial = BrokenBatch()
        baseline = Campaign(trial, 4, 5).run()
        rescued = Campaign(
            trial, 4, 5,
            plan=RunPlan(batch=2, executor=ExecutorConfig.serial()),
        ).run()
        assert rescued.ok
        assert rescued.per_trial == baseline.per_trial


class TestFingerprintCoupling:
    def test_fingerprint_mixes_batch_contract(self, monkeypatch):
        from repro.store import fingerprint as fp

        fp.code_fingerprint.cache_clear()
        before = fp.code_fingerprint()
        monkeypatch.setattr(
            batch_mod, "BATCH_RNG_CONTRACT", "repro-batch-rng-v999"
        )
        fp.code_fingerprint.cache_clear()
        after = fp.code_fingerprint()
        assert before != after
        monkeypatch.undo()
        fp.code_fingerprint.cache_clear()
        assert fp.code_fingerprint() == before

    def test_contract_version_string(self):
        assert BATCH_RNG_CONTRACT == "repro-batch-rng-v1"
