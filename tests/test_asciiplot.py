"""Tests for repro.experiments.asciiplot — terminal line charts."""

import pytest

from repro.experiments.asciiplot import AsciiChart, line_chart


class TestLineChart:
    def test_renders_markers_and_legend(self):
        text = line_chart(
            "demo", [1, 2, 3], {"a": [1.0, 2.0, 3.0], "b": [3.0, 2.0, 1.0]}
        )
        assert "demo" in text
        assert "o a" in text and "x b" in text
        assert "o" in text and "x" in text

    def test_axis_labels_present(self):
        text = line_chart("t", [2, 10], {"s": [5.0, 1.0]})
        lines = text.splitlines()
        assert any("2" in ln and "10" in ln for ln in lines)

    def test_log_scale(self):
        text = line_chart(
            "log", [1, 2, 3], {"s": [10.0, 1000.0, 100000.0]}, log_y=True
        )
        assert "1.0e+05" in text or "100000" in text.replace(",", "")

    def test_log_scale_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            line_chart("bad", [1, 2], {"s": [0.0, 1.0]}, log_y=True)

    def test_constant_series_renders(self):
        text = line_chart("flat", [1, 2, 3], {"s": [5.0, 5.0, 5.0]})
        assert "o" in text

    def test_dimensions_respected(self):
        text = line_chart(
            "dim", [1, 2], {"s": [1.0, 2.0]}, width=30, height=8
        )
        body = [ln for ln in text.splitlines() if "│" in ln or "┤" in ln]
        assert len(body) == 8
        for ln in body:
            assert len(ln) <= 12 + 30 + 1


class TestAsciiChartValidation:
    def test_empty_chart_rejected(self):
        with pytest.raises(ValueError):
            AsciiChart().render()

    def test_empty_x_rejected(self):
        with pytest.raises(ValueError):
            AsciiChart().set_x([])

    def test_length_mismatch_rejected(self):
        chart = AsciiChart()
        chart.set_x([1, 2, 3])
        with pytest.raises(ValueError):
            chart.add_series("s", [1.0])

    def test_many_series_cycle_markers(self):
        chart = AsciiChart()
        chart.set_x([1, 2])
        for i in range(10):
            chart.add_series(f"s{i}", [float(i), float(i + 1)])
        text = chart.render()
        assert "s9" in text
