"""Tests for repro.analysis.geometry — Eqs. (5)-(10), verified against
Monte-Carlo integration where formulas are involved."""

import math

import numpy as np
import pytest

from repro.analysis.geometry import (
    TierGeometry,
    geometric_num_tiers,
    lens_area,
    tier_of_distance,
    tier_ring_area,
)


def _mc_lens(a, b, d, n=200_000, seed=0):
    """Monte-Carlo area of the intersection of two disks."""
    rng = np.random.default_rng(seed)
    # Sample within disk A centred at origin; disk B centred at (d, 0).
    r = a * np.sqrt(rng.random(n))
    theta = rng.random(n) * 2 * math.pi
    x, y = r * np.cos(theta), r * np.sin(theta)
    inside_b = (x - d) ** 2 + y**2 <= b * b
    return math.pi * a * a * inside_b.mean()


class TestLensArea:
    def test_disjoint(self):
        assert lens_area(1.0, 1.0, 3.0) == 0.0

    def test_touching(self):
        assert lens_area(1.0, 1.0, 2.0) == 0.0

    def test_contained(self):
        assert lens_area(1.0, 10.0, 0.5) == pytest.approx(math.pi)

    def test_identical(self):
        assert lens_area(2.0, 2.0, 0.0) == pytest.approx(4 * math.pi)

    def test_half_overlap_symmetry(self):
        assert lens_area(2.0, 3.0, 2.5) == pytest.approx(
            lens_area(3.0, 2.0, 2.5)
        )

    @pytest.mark.parametrize(
        "a,b,d",
        [(2.0, 3.0, 2.5), (1.0, 1.0, 1.0), (5.0, 2.0, 4.0), (3.0, 3.0, 0.5)],
    )
    def test_matches_monte_carlo(self, a, b, d):
        assert lens_area(a, b, d) == pytest.approx(
            _mc_lens(a, b, d), rel=0.02
        )

    def test_zero_radius(self):
        assert lens_area(0.0, 1.0, 0.5) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            lens_area(-1.0, 1.0, 0.0)


class TestTierFunctions:
    def test_tier_of_distance_tier1(self):
        assert tier_of_distance(0.0, 20.0, 6.0) == 1
        assert tier_of_distance(20.0, 20.0, 6.0) == 1

    def test_tier_of_distance_outer(self):
        assert tier_of_distance(20.1, 20.0, 6.0) == 2
        assert tier_of_distance(26.0, 20.0, 6.0) == 2
        assert tier_of_distance(26.1, 20.0, 6.0) == 3

    def test_tier_validation(self):
        with pytest.raises(ValueError):
            tier_of_distance(-1.0, 20.0, 6.0)
        with pytest.raises(ValueError):
            tier_of_distance(1.0, 0.0, 6.0)

    def test_geometric_num_tiers_paper_values(self):
        """Matches Fig. 3's layout: R = 30, r' = 20."""
        expected = {2: 6, 3: 5, 4: 4, 5: 3, 6: 3, 7: 3, 8: 3, 9: 3, 10: 2}
        for r, k in expected.items():
            assert geometric_num_tiers(30.0, 20.0, float(r)) == k

    def test_num_tiers_when_r_prime_covers_all(self):
        assert geometric_num_tiers(20.0, 20.0, 5.0) == 1

    def test_ring_areas_sum_to_field(self):
        total = sum(
            tier_ring_area(k, 30.0, 20.0, 6.0) for k in range(1, 4)
        )
        assert total == pytest.approx(math.pi * 900)

    def test_ring_area_clipped_at_field_edge(self):
        # Tier 3 at r = 6 covers 26..30 m only (not 26..32).
        a3 = tier_ring_area(3, 30.0, 20.0, 6.0)
        assert a3 == pytest.approx(math.pi * (900 - 676))

    def test_ring_area_validation(self):
        with pytest.raises(ValueError):
            tier_ring_area(0, 30.0, 20.0, 6.0)


class TestTierGeometry:
    def _geo(self, tier=2, r=6.0):
        return TierGeometry(
            density=3.5368,
            reader_to_tag=30.0,
            tag_to_reader=20.0,
            tag_range=r,
            tier=tier,
            n_tiers=geometric_num_tiers(30.0, 20.0, r),
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            TierGeometry(0.0, 30, 20, 6, 1, 3)
        with pytest.raises(ValueError):
            TierGeometry(3.5, 30, 20, 6, 4, 3)
        with pytest.raises(ValueError):
            TierGeometry(3.5, 30, 20, -6, 1, 3)

    def test_tag_distance(self):
        assert self._geo(tier=1).tag_distance == 20.0
        assert self._geo(tier=3).tag_distance == 32.0

    def test_gamma_prime_eq5(self):
        geo = self._geo()
        assert geo.gamma_prime_size(0) == 0.0
        # |Γ'_1| = rho * pi * r'^2
        assert geo.gamma_prime_size(1) == pytest.approx(
            3.5368 * math.pi * 400, rel=1e-6
        )
        assert geo.gamma_prime_size(2) == pytest.approx(
            3.5368 * math.pi * 26**2, rel=1e-6
        )

    def test_gamma_zero_is_self(self):
        assert self._geo().gamma_size(0) == 1.0

    def test_gamma_grows(self):
        geo = self._geo()
        assert geo.gamma_size(1) < geo.gamma_size(2)

    def test_gamma_inner_tier_full_disk(self):
        # Tier-1 tag, i = 1: the disk never leaves coverage (k+i-1 <= K).
        geo = self._geo(tier=1)
        assert geo.gamma_size(1) == pytest.approx(
            3.5368 * math.pi * 36, rel=1e-6
        )

    def test_shadow_reduces_outer_tier_disk(self):
        # A tier-3 tag at 32 m: even its 1-hop disk pokes outside R = 30.
        geo = self._geo(tier=3)
        full = 3.5368 * math.pi * 36
        assert geo.gamma_size(1) < full

    def test_shadow_area_monte_carlo(self):
        """S_i of Fig. 2(b) against direct integration."""
        geo = self._geo(tier=3)
        i = 1
        c_radius = i * 6.0
        rng = np.random.default_rng(5)
        n = 200_000
        r = c_radius * np.sqrt(rng.random(n))
        th = rng.random(n) * 2 * math.pi
        # tag at (32, 0); reader at origin with R = 30
        x = 32.0 + r * np.cos(th)
        y = r * np.sin(th)
        outside = x**2 + y**2 > 900.0
        mc = math.pi * c_radius**2 * outside.mean()
        assert geo.shadow_area(i) == pytest.approx(mc, rel=0.02)

    def test_union_bounds(self):
        geo = self._geo(tier=2)
        for i in range(0, 4):
            union = geo.gamma_union_size(i)
            assert union <= geo.gamma_size(i) + geo.gamma_prime_size(i) + 1e-9
            assert union >= max(geo.gamma_size(i), geo.gamma_prime_size(i)) - 1e-9

    def test_union_monotone_in_hops(self):
        geo = self._geo(tier=2)
        sizes = [geo.gamma_union_size(i) for i in range(4)]
        assert all(a <= b + 1e-9 for a, b in zip(sizes, sizes[1:]))

    def test_disjoint_regime_is_plain_sum(self):
        """Eq. (10): for i <= k/2 the two disks cannot intersect."""
        geo = self._geo(tier=3, r=2.0)  # k = 3 at r = 2? ensure valid
        geo = TierGeometry(3.5368, 30.0, 20.0, 2.0, 4, 6)
        i = 2  # i <= k/2
        assert geo.overlap_area(i) == 0.0
        assert geo.gamma_union_size(i) == pytest.approx(
            geo.gamma_size(i) + geo.gamma_prime_size(i)
        )

    def test_overlap_positive_when_disks_meet(self):
        geo = TierGeometry(3.5368, 30.0, 20.0, 6.0, 2, 3)
        # i = 2: tag disk radius 12 at distance 26; reader disk radius 26.
        assert geo.overlap_area(2) > 0.0
