"""Tests for repro.scenario — trajectories, power, events, the scenario
engine's static-equivalence pin, and run_scenario determinism."""

import math

import numpy as np
import pytest

from repro.core.session import CCMConfig, run_session
from repro.net.channel import LossyChannel, PerfectChannel
from repro.net.energy import EnergyLedger
from repro.net.geometry import Point
from repro.net.topology import PaperDeployment, paper_network
from repro.scenario import (
    ALWAYS_POWERED,
    EventJournal,
    EventScheduler,
    LinkBudget,
    ScenarioChannel,
    ScenarioConfig,
    ScenarioSessionEngine,
    StaticTrajectory,
    WaypointTrajectory,
    make_trajectory,
    run_scenario,
)
from repro.sim.rng import TagHasher


def small_network(n=400, r=6.0, seed=11):
    return paper_network(
        r, n_tags=n, seed=seed, deployment=PaperDeployment(n_tags=n)
    )


def picks_for(net, frame_size, seed=42):
    hasher = TagHasher(seed=seed)
    return [hasher.slot_of(int(t), frame_size) for t in net.tag_ids]


class TestEventScheduler:
    def test_pops_in_time_order(self):
        sched = EventScheduler()
        sched.push(5.0, "b")
        sched.push(1.0, "a")
        sched.push(9.0, "c")
        assert [sched.pop().kind for _ in range(3)] == ["a", "b", "c"]

    def test_ties_break_by_push_order(self):
        sched = EventScheduler()
        sched.push(1.0, "first")
        sched.push(1.0, "second")
        assert sched.pop().kind == "first"
        assert sched.pop().kind == "second"

    def test_bool_and_peek(self):
        sched = EventScheduler()
        assert not sched
        sched.push(2.0, "x")
        assert sched and sched.peek_time() == 2.0


class TestEventJournal:
    def test_records_are_sequenced(self):
        j = EventJournal()
        j.record(0.0, "a")
        j.record(1.0, "b", value=3)
        lines = j.to_ndjson().splitlines()
        assert len(lines) == 2
        assert '"seq":0' in lines[0].replace(" ", "")
        assert '"seq":1' in lines[1].replace(" ", "")

    def test_reserved_keys_rejected(self):
        j = EventJournal()
        with pytest.raises(ValueError, match="shadows"):
            j.record(0.0, "a", t=1.0)

    def test_write_roundtrip(self, tmp_path):
        j = EventJournal()
        j.record(0.5, "x", n=1)
        path = tmp_path / "journal.ndjson"
        j.write(path)
        assert path.read_text(encoding="utf-8") == j.to_ndjson()


class TestTrajectories:
    def test_static_never_moves(self):
        traj = StaticTrajectory(Point(2.0, 3.0))
        assert traj.is_static
        assert traj.position(1e6) == Point(2.0, 3.0)

    def test_aisle_constant_velocity(self):
        traj = make_trajectory("aisle", field_radius=10.0, speed_mps=2.0)
        p0, p5 = traj.position(0.0), traj.position(5.0)
        assert p0 == Point(-10.0, 0.0)
        assert p5.x == pytest.approx(0.0)
        assert p5.y == pytest.approx(0.0)

    def test_uav_covers_both_edges(self):
        traj = make_trajectory("uav", field_radius=9.0, speed_mps=3.0)
        xs = [traj.position(t).x for t in np.linspace(0, 200, 400)]
        assert min(xs) == pytest.approx(-9.0)
        assert max(xs) == pytest.approx(9.0)

    def test_uav_holds_at_end(self):
        traj = make_trajectory("uav", field_radius=5.0, speed_mps=10.0)
        late = traj.position(1e5)
        assert traj.position(2e5) == late

    def test_uav_speed_honoured_on_first_lane(self):
        traj = make_trajectory("uav", field_radius=8.0, speed_mps=4.0)
        a, b = traj.position(0.0), traj.position(1.0)
        assert math.hypot(b.x - a.x, b.y - a.y) == pytest.approx(4.0)

    def test_waypoints_piecewise(self):
        traj = WaypointTrajectory(
            (Point(0, 0), Point(4, 0), Point(4, 4)), speed_mps=2.0
        )
        assert traj.position(1.0) == Point(2.0, 0.0)
        mid = traj.position(3.0)
        assert (mid.x, mid.y) == (4.0, 2.0)
        assert traj.position(100.0) == Point(4.0, 4.0)

    def test_zero_speed_is_static(self):
        assert make_trajectory("aisle", speed_mps=0.0).is_static
        assert make_trajectory("uav", speed_mps=0.0).is_static

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown trajectory"):
            make_trajectory("orbit")

    def test_waypoint_requires_points(self):
        with pytest.raises(ValueError):
            WaypointTrajectory((), speed_mps=1.0)


class TestLinkBudget:
    def test_received_power_monotone_in_distance(self):
        lb = LinkBudget(threshold_dbm=-20.0)
        d = np.array([1.0, 5.0, 20.0, 50.0])
        p = lb.received_dbm(d)
        assert np.all(np.diff(p) < 0)

    def test_near_field_clamped(self):
        lb = LinkBudget()
        assert lb.received_dbm(np.array([0.0]))[0] == lb.received_dbm(
            np.array([1.0])
        )[0]

    def test_powered_radius_consistent_with_mask(self):
        lb = LinkBudget(threshold_dbm=-22.0)
        radius = lb.powered_radius_m()
        d = np.array([radius * 0.99, radius * 1.01])
        assert lb.powered_mask(d).tolist() == [True, False]

    def test_always_powered(self):
        assert ALWAYS_POWERED.always_powered
        assert ALWAYS_POWERED.powered_radius_m() == math.inf
        assert ALWAYS_POWERED.powered_mask(np.array([1e9])).all()

    def test_validation(self):
        with pytest.raises(ValueError):
            LinkBudget(path_loss_exponent=0.0)
        with pytest.raises(ValueError):
            LinkBudget(reference_m=0.0)


class TestScenarioChannel:
    def test_delegates_when_inactive(self):
        net = small_network(n=120)
        chan = ScenarioChannel(PerfectChannel())
        masks = np.random.default_rng(0).integers(
            0, 2**63, size=(net.n_tags, 2), dtype=np.uint64
        )
        heard = chan.propagate_packed(masks, net.indptr, net.indices, None)
        plain = PerfectChannel().propagate_packed(
            masks, net.indptr, net.indices, None
        )
        assert np.array_equal(heard, plain)

    def test_inactive_tags_silent_and_deaf(self):
        net = small_network(n=120)
        chan = ScenarioChannel(PerfectChannel())
        active = np.zeros(net.n_tags, dtype=bool)
        active[: net.n_tags // 2] = True
        chan.set_active(active)
        masks = np.full((net.n_tags, 2), 3, dtype=np.uint64)
        heard = chan.propagate_packed(masks, net.indptr, net.indices, None)
        # Sleeping tags hear nothing...
        assert not heard[~active].any()
        # ...and transmit nothing: the reader senses only awake tier-1 tags.
        busy = chan.reader_senses_packed(masks, net.tier1_mask, None)
        only_awake = PerfectChannel().reader_senses_packed(
            np.where(active[:, None], masks, np.uint64(0)),
            net.tier1_mask,
            None,
        )
        assert np.array_equal(busy, only_awake)

    def test_not_perfect_keeps_wrapper_off_fast_path(self):
        # auto engine routing special-cases exact channel types; the
        # wrapper must never masquerade as one of them.
        assert not ScenarioChannel(PerfectChannel()).is_perfect


class TestWithReaders:
    def test_matches_full_rebuild(self):
        from dataclasses import replace as dc_replace

        from repro.net.topology import Network

        net = small_network(n=300)
        moved = dc_replace(net.readers[0], position=Point(10.0, -4.0))
        relinked = net.with_readers([moved])
        rebuilt = Network.build(net.positions, [moved], 6.0)
        assert np.array_equal(relinked.tiers, rebuilt.tiers)
        assert np.array_equal(relinked.tier1_mask, rebuilt.tier1_mask)
        assert np.array_equal(
            relinked.reader_distance, rebuilt.reader_distance
        )
        assert relinked.num_tiers == rebuilt.num_tiers

    def test_shares_adjacency(self):
        net = small_network(n=200)
        relinked = net.with_readers(net.readers)
        assert relinked.indptr is net.indptr
        assert relinked.indices is net.indices


class TestStaticEquivalencePin:
    """The acceptance pin: hooks off ⇒ bit-identical to the plain engines."""

    @pytest.mark.parametrize("baseline", ["bigint", "packed"])
    @pytest.mark.parametrize("loss", [0.0, 0.2])
    def test_scenario_engine_equals_baseline(self, baseline, loss):
        net = small_network(n=400)
        f = 129
        picks = picks_for(net, f)
        config = CCMConfig(frame_size=f)

        def one(engine):
            channel = (
                LossyChannel(loss, frame_size_hint=f)
                if loss > 0.0
                else PerfectChannel()
            )
            return run_session(
                net,
                picks,
                config=config,
                channel=channel,
                rng=np.random.default_rng(77),
                engine=engine,
            )

        ours, theirs = one("scenario"), one(baseline)
        assert ours.bitmap == theirs.bitmap
        assert ours.rounds == theirs.rounds
        assert ours.slots.total_slots == theirs.slots.total_slots
        assert ours.terminated_cleanly == theirs.terminated_cleanly
        assert ours.round_stats == theirs.round_stats
        assert (
            ours.ledger.bits_sent.tobytes()
            == theirs.ledger.bits_sent.tobytes()
        )
        assert (
            ours.ledger.bits_received.tobytes()
            == theirs.ledger.bits_received.tobytes()
        )

    def test_static_trajectory_and_always_powered_still_pinned(self):
        """Explicit no-op hooks (a static trajectory at the reader, an
        always-powered budget) must compile away entirely."""
        net = small_network(n=300)
        f = 97
        picks = picks_for(net, f)
        config = CCMConfig(frame_size=f)
        engine = ScenarioSessionEngine(
            ScenarioConfig(
                trajectory=StaticTrajectory(net.readers[0].position),
                link_budget=ALWAYS_POWERED,
            )
        )
        from repro.core.session import _picks_to_masks

        ours = engine.run(net, _picks_to_masks(picks, f), config)
        theirs = run_session(net, picks, config=config, engine="packed")
        assert ours.bitmap == theirs.bitmap
        assert ours.rounds == theirs.rounds
        assert (
            ours.ledger.bits_received.tobytes()
            == theirs.ledger.bits_received.tobytes()
        )

    def test_registered_in_engine_registry(self):
        from repro.core.engine import available_engines, get_engine

        assert "scenario" in available_engines()
        assert isinstance(get_engine("scenario"), ScenarioSessionEngine)

    def test_rejects_unpacked_channel(self):
        class NoPacked:
            supports_packed = False

        net = small_network(n=50)
        engine = ScenarioSessionEngine()
        with pytest.raises(ValueError, match="packed"):
            engine.run(
                net, [0] * net.n_tags, CCMConfig(frame_size=8),
                channel=NoPacked(),
            )


class TestScenarioEngineDynamics:
    def test_motion_relinks_and_journals(self):
        net = small_network(n=250)
        f = 65
        picks = picks_for(net, f)
        from repro.core.session import _picks_to_masks

        journal = EventJournal()
        engine = ScenarioSessionEngine(
            ScenarioConfig(
                trajectory=make_trajectory(
                    "aisle", field_radius=30.0, speed_mps=2000.0
                ),
            )
        )
        engine.journal = journal
        engine.run(net, _picks_to_masks(picks, f), CCMConfig(frame_size=f))
        assert engine.last_run_info["relinks"] >= 1
        rounds = [
            line for line in journal.to_ndjson().splitlines()
            if '"kind":"round"' in line.replace(" ", "")
        ]
        assert rounds

    def test_unpowered_tags_accrue_nothing(self):
        net = small_network(n=250)
        f = 65
        picks = picks_for(net, f)
        from repro.core.session import _picks_to_masks

        budget = LinkBudget(threshold_dbm=-10.0)  # tiny powered radius
        radius = budget.powered_radius_m()
        engine = ScenarioSessionEngine(ScenarioConfig(link_budget=budget))
        result = engine.run(
            net, _picks_to_masks(picks, f), CCMConfig(frame_size=f)
        )
        asleep = net.reader_distance > radius
        assert asleep.any()
        assert not result.ledger.bits_sent[asleep].any()
        assert not result.ledger.bits_received[asleep].any()

    def test_sleeping_reachable_tags_mean_unclean_termination(self):
        net = small_network(n=250)
        f = 65
        picks = picks_for(net, f)
        from repro.core.session import _picks_to_masks

        engine = ScenarioSessionEngine(
            ScenarioConfig(link_budget=LinkBudget(threshold_dbm=-5.0))
        )
        result = engine.run(
            net, _picks_to_masks(picks, f), CCMConfig(frame_size=f)
        )
        assert not result.terminated_cleanly

    def test_shared_ledger_mask_never_leaks(self):
        net = small_network(n=150)
        f = 65
        picks = picks_for(net, f)
        from repro.core.session import _picks_to_masks

        ledger = EnergyLedger(net.n_tags)
        engine = ScenarioSessionEngine(
            ScenarioConfig(link_budget=LinkBudget(threshold_dbm=-10.0))
        )
        engine.run(
            net, _picks_to_masks(picks, f), CCMConfig(frame_size=f),
            ledger=ledger,
        )
        assert ledger.active_mask is None


class TestRunScenarioDeterminism:
    def test_same_seed_byte_identical(self):
        kwargs = dict(
            n_tags=300,
            frame_size=97,
            n_operations=2,
            trajectory="uav",
            speed_mps=6.0,
            power_threshold_dbm=-22.0,
            max_step_m=1.0,
            seed=5,
        )
        a = run_scenario(**kwargs)
        b = run_scenario(**kwargs)
        assert a.journal.to_ndjson() == b.journal.to_ndjson()
        assert a.metrics() == b.metrics()
        assert (
            a.ledger.bits_received.tobytes()
            == b.ledger.bits_received.tobytes()
        )

    def test_different_seed_diverges(self):
        base = dict(
            n_tags=300, frame_size=97, n_operations=2,
            trajectory="uav", speed_mps=6.0, power_threshold_dbm=-22.0,
        )
        a = run_scenario(seed=1, **base)
        b = run_scenario(seed=2, **base)
        assert a.journal.to_ndjson() != b.journal.to_ndjson()

    def test_static_scenario_ops_match_plain_run_session(self):
        """Zero velocity + always powered ⇒ every operation bit-identical
        to a plain static run_session on the same deployment and picks."""
        from repro.net.geometry import uniform_disk
        from repro.net.topology import Network
        from repro.protocols.transport import frame_picks
        from repro.scenario.run import _PICKS_STREAM
        from repro.sim.rng import derive_seed

        n, f, seed = 350, 97, 9
        result = run_scenario(
            n_tags=n, frame_size=f, n_operations=2, trajectory="static",
            speed_mps=0.0, seed=seed,
        )
        # Replay the contract by hand: deployment draws come first.
        dep = PaperDeployment(n_tags=n)
        gen = np.random.default_rng(seed)
        positions = uniform_disk(dep.n_tags, dep.field_radius, rng=gen)
        net = Network.build(positions, [dep.reader()], 6.0)
        for k, session in enumerate(result.session_results, start=1):
            picks = frame_picks(
                net.tag_ids.tolist(), f, 1.0,
                derive_seed(seed, _PICKS_STREAM, k),
            )
            plain = run_session(
                net, picks, config=CCMConfig(frame_size=f), engine="packed"
            )
            assert session.bitmap == plain.bitmap
            assert session.rounds == plain.rounds
            assert session.round_stats == plain.round_stats
            assert session.terminated_cleanly and plain.terminated_cleanly
        assert result.completion_rate == 1.0

    def test_motion_degrades_completion(self):
        static = run_scenario(
            n_tags=300, frame_size=97, n_operations=2,
            trajectory="static", seed=4,
        )
        moving = run_scenario(
            n_tags=300, frame_size=97, n_operations=2,
            trajectory="uav", speed_mps=8.0, power_threshold_dbm=-22.0,
            seed=4,
        )
        assert static.completion_rate == 1.0
        assert moving.completion_rate < static.completion_rate
        assert (
            moving.metrics()["avg_received_bits"]
            < static.metrics()["avg_received_bits"]
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            run_scenario(n_operations=0)
        with pytest.raises(ValueError):
            run_scenario(participation=1.5)
        with pytest.raises(ValueError):
            run_scenario(op_gap_s=-1.0)

    def test_fingerprint_covers_scenario_contract(self):
        from repro.store.fingerprint import code_fingerprint

        # The fingerprint must react to the scenario package existing —
        # at minimum, it's computed without error and is stable.
        assert code_fingerprint() == code_fingerprint()


class TestScenarioMotionExperiment:
    def test_rows_and_report(self):
        from repro.experiments import scenario_motion

        rows = scenario_motion.run(
            trajectories=("static", "uav"),
            n_tags=250,
            frame_size=83,
            n_operations=2,
            speed_mps=6.0,
            n_trials=2,
        )
        by_traj = {row.trajectory: row for row in rows}
        assert by_traj["static"].completion_rate == pytest.approx(1.0)
        assert by_traj["static"].powered_fraction == pytest.approx(1.0)
        assert by_traj["uav"].completion_rate < 1.0
        text = scenario_motion.report(rows)
        assert "static" in text and "uav" in text

    def test_trial_is_cacheable_callable(self):
        from repro.experiments.scenario_motion import (
            TRIAL_METRICS,
            ScenarioTrial,
        )

        trial = ScenarioTrial(
            trajectory="aisle", n_tags=200, frame_size=65,
            n_operations=1, speed_mps=4.0, power_threshold_dbm=-22.0,
        )
        out1 = trial(0, 123)
        out2 = trial(0, 123)
        assert out1 == out2
        assert set(out1) == set(TRIAL_METRICS)
