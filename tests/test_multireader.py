"""Tests for repro.core.multireader — Sec. III-G / Eq. (1)."""

import numpy as np
import pytest

from repro.core.multireader import run_multireader_session
from repro.core.session import CCMConfig
from repro.net.geometry import Point
from repro.net.topology import Reader
from repro.protocols.transport import ideal_bitmap


def _reader(x, y, big_r=5.0, r_prime=1.5):
    return Reader(Point(x, y), reader_to_tag_range=big_r,
                  tag_to_reader_range=r_prime)


class TestValidation:
    def test_requires_readers(self):
        with pytest.raises(ValueError):
            run_multireader_session(
                np.zeros((1, 2)), [], 1.0, [0], CCMConfig(frame_size=8)
            )

    def test_picks_length(self):
        with pytest.raises(ValueError):
            run_multireader_session(
                np.zeros((2, 2)), [_reader(0, 0)], 1.0, [0],
                CCMConfig(frame_size=8),
            )


class TestTwoReaderField:
    """Two separate clusters, one reader each; no single reader covers both."""

    def setup_method(self):
        # Cluster A near (0,0); cluster B near (20,0).
        self.positions = np.array(
            [[1.0, 0.0], [2.0, 0.0], [21.0, 0.0], [22.0, 0.0]]
        )
        self.readers = [_reader(0.0, 0.0), _reader(20.0, 0.0)]
        self.picks = [0, 1, 2, 3]

    def test_combined_bitmap_is_or_of_windows(self):
        result = run_multireader_session(
            self.positions, self.readers, 1.2, self.picks,
            CCMConfig(frame_size=8),
        )
        assert list(result.bitmap.indices()) == [0, 1, 2, 3]
        # Each per-reader window saw only its cluster.
        assert result.per_reader[0].bitmap.popcount() == 2
        assert result.per_reader[1].bitmap.popcount() == 2

    def test_single_reader_misses_far_cluster(self):
        result = run_multireader_session(
            self.positions, [self.readers[0]], 1.2, self.picks,
            CCMConfig(frame_size=8),
        )
        assert list(result.bitmap.indices()) == [0, 1]
        assert result.uncovered.tolist() == [False, False, True, True]

    def test_slots_are_round_robin_sum(self):
        result = run_multireader_session(
            self.positions, self.readers, 1.2, self.picks,
            CCMConfig(frame_size=8),
        )
        assert result.total_slots == sum(
            p.slots.total_slots for p in result.per_reader
        )

    def test_uncovered_empty_when_both_readers(self):
        result = run_multireader_session(
            self.positions, self.readers, 1.2, self.picks,
            CCMConfig(frame_size=8),
        )
        assert not result.uncovered.any()

    def test_energy_indexed_by_global_tag(self):
        result = run_multireader_session(
            self.positions, self.readers, 1.2, self.picks,
            CCMConfig(frame_size=8),
        )
        assert result.ledger.n_tags == 4
        assert np.all(result.ledger.bits_sent >= 1.0)


class TestOverlappingReaders:
    def test_shared_tag_charged_per_window(self):
        """A tag covered by both readers participates twice; its picks are
        identical, so the OR stays correct while energy doubles."""
        positions = np.array([[2.0, 0.0]])
        readers = [_reader(0.0, 0.0), _reader(4.0, 0.0)]
        # tag is 2.0 from both readers -> covered (R=5) but outside r'
        # (1.5); give it a relay to each reader.
        positions = np.array([[2.0, 0.0], [1.0, 0.0], [3.0, 0.0]])
        picks = [4, 5, 6]
        result = run_multireader_session(
            positions, readers, 1.2, picks, CCMConfig(frame_size=8)
        )
        reference = ideal_bitmap([1, 2, 3], 8, 1.0, 0)
        # picks were explicit, so compare against the explicit union
        assert list(result.bitmap.indices()) == [4, 5, 6]
        # Middle tag participated in both windows.
        single = run_multireader_session(
            positions, [readers[0]], 1.2, picks, CCMConfig(frame_size=8)
        )
        assert (
            result.ledger.bits_sent[0] >= single.ledger.bits_sent[0]
        )

    def test_reader_with_no_tags_contributes_nothing(self):
        positions = np.array([[1.0, 0.0]])
        readers = [_reader(0.0, 0.0), _reader(100.0, 0.0)]
        result = run_multireader_session(
            positions, readers, 1.0, [3], CCMConfig(frame_size=8)
        )
        assert list(result.bitmap.indices()) == [3]
        assert result.per_reader[1].rounds == 0
