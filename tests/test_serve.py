"""The campaign service: job specs, queue semantics, HTTP lifecycle.

Most tests run a real :class:`~repro.serve.ServiceApp` on an ephemeral
port (the event loop in a background thread, the client over real
sockets) — the full submit → run → stream → complete path, plus the
queue-full 429, priority ordering, trial-boundary cancellation, drain
and restart-resume, and shared-store dedupe the service promises.  The
SIGTERM test exercises the actual ``repro serve`` process via
``kill -TERM``.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import subprocess
import sys
import threading
import time
from dataclasses import dataclass
from types import SimpleNamespace

import pytest

from repro.serve import (
    JobManager,
    JobSpec,
    QueueFull,
    ServiceApp,
    ServiceClient,
    ServiceError,
    UnknownJob,
)
from repro.serve.jobs import JOB_SCHEMA
from repro.sim.plan import PLAN_SCHEMA
from repro.store import ResultStore, read_record_path


def job_record(jobs_dir, job_id):
    """The persisted job record (a repro-record-bin-v1 container)."""
    record, _ = read_record_path(jobs_dir / f"{job_id}.bin")
    return record


@dataclass(frozen=True)
class TinyTrial:
    """A fast deterministic trial, cacheable by dataclass config."""

    offset: float = 0.0

    def __call__(self, trial_index: int, seed: int):
        return {"value": float(seed % 97) + self.offset, "k": float(trial_index)}


@dataclass(frozen=True)
class SlowTrial:
    """A trial that takes real wall time, for cancellation/drain tests."""

    sleep_s: float = 0.05
    offset: float = 0.0

    def __call__(self, trial_index: int, seed: int):
        time.sleep(self.sleep_s)
        return {"value": float(seed % 97) + self.offset}


def tiny_spec(n_trials=5, base_seed=3, *, kind="campaign", offset=0.0, **extra):
    doc = {
        "schema": JOB_SCHEMA,
        "kind": kind,
        "trial": {
            "type": f"{__name__}.TinyTrial",
            "params": {"offset": offset},
        },
        "n_trials": n_trials,
        "base_seed": base_seed,
        "plan": {"schema": PLAN_SCHEMA},
    }
    doc.update(extra)
    return doc


def slow_spec(n_trials=40, sleep_s=0.05, **extra):
    doc = tiny_spec(n_trials=n_trials, **extra)
    doc["trial"] = {
        "type": f"{__name__}.SlowTrial",
        "params": {"sleep_s": sleep_s},
    }
    return doc


def deterministic(result_doc):
    """A campaign result minus its run-dependent fields (timing, hits)."""
    return {
        k: v for k, v in result_doc.items()
        if k not in ("elapsed_s", "cache_hits")
    }


# -- JobSpec wire schema -------------------------------------------------------


class TestJobSpec:
    def test_round_trips(self):
        spec = JobSpec.from_json(tiny_spec(priority=3))
        assert spec.kind == "campaign"
        assert spec.priority == 3
        assert JobSpec.from_json(spec.to_json()) == spec

    def test_sweep_round_trips(self):
        doc = tiny_spec(
            kind="sweep", parameter="offset",
            parameter_label="offset_units", values=[1.0, 2.0],
        )
        spec = JobSpec.from_json(doc)
        assert spec.values == (1.0, 2.0)
        assert spec.total_trials == 10
        assert JobSpec.from_json(spec.to_json()) == spec

    def test_wrong_schema_rejected(self):
        doc = tiny_spec()
        doc["schema"] = "repro-job-v0"
        with pytest.raises(ValueError, match="schema"):
            JobSpec.from_json(doc)

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="surprise"):
            JobSpec.from_json({**tiny_spec(), "surprise": 1})

    def test_bad_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            JobSpec.from_json(tiny_spec(kind="mystery"))

    def test_sweep_needs_parameter_and_values(self):
        with pytest.raises(ValueError, match="parameter"):
            JobSpec.from_json(tiny_spec(kind="sweep", values=[1.0]))
        with pytest.raises(ValueError, match="values"):
            JobSpec.from_json(tiny_spec(kind="sweep", parameter="offset"))

    def test_bad_plan_rejected_at_submission(self):
        doc = tiny_spec()
        doc["plan"] = {"schema": PLAN_SCHEMA, "warp": 9}
        with pytest.raises(ValueError, match="warp"):
            JobSpec.from_json(doc)

    def test_build_trial(self):
        spec = JobSpec.from_json(tiny_spec(offset=2.0))
        trial = spec.build_trial()
        assert isinstance(trial, TinyTrial)
        assert trial.offset == 2.0

    def test_build_trial_factory_overrides_parameter(self):
        spec = JobSpec.from_json(
            tiny_spec(kind="sweep", parameter="offset", values=[5.0])
        )
        assert spec.build_trial_factory()(5.0).offset == 5.0

    def test_unimportable_trial_type(self):
        spec = JobSpec.from_json(
            {**tiny_spec(), "trial": {"type": "no.such.Thing", "params": {}}}
        )
        with pytest.raises(ValueError, match="cannot import"):
            spec.build_trial()


# -- JobManager (no HTTP) ------------------------------------------------------


class TestJobManager:
    def test_queue_full_raises(self, tmp_path):
        manager = JobManager(ResultStore(tmp_path), max_queue=2)
        # never started: everything stays queued
        manager.submit(JobSpec.from_json(tiny_spec()))
        manager.submit(JobSpec.from_json(tiny_spec(base_seed=4)))
        with pytest.raises(QueueFull):
            manager.submit(JobSpec.from_json(tiny_spec(base_seed=5)))

    def test_priority_order(self, tmp_path):
        manager = JobManager(ResultStore(tmp_path), max_queue=10)
        low = manager.submit(JobSpec.from_json(tiny_spec(priority=0)))
        high = manager.submit(
            JobSpec.from_json(tiny_spec(base_seed=4, priority=9))
        )
        mid = manager.submit(
            JobSpec.from_json(tiny_spec(base_seed=5, priority=5))
        )
        order = [manager._next_job().id for _ in range(3)]
        assert order == [high.id, mid.id, low.id]

    def test_fifo_within_priority(self, tmp_path):
        manager = JobManager(ResultStore(tmp_path), max_queue=10)
        first = manager.submit(JobSpec.from_json(tiny_spec()))
        second = manager.submit(JobSpec.from_json(tiny_spec(base_seed=4)))
        assert [manager._next_job().id for _ in range(2)] == [
            first.id, second.id,
        ]

    def test_cancel_queued(self, tmp_path):
        manager = JobManager(ResultStore(tmp_path))
        job = manager.submit(JobSpec.from_json(tiny_spec()))
        assert manager.cancel(job.id).state == "cancelled"
        record = job_record(manager.jobs_dir, job.id)
        assert record["state"] == "cancelled"

    def test_unknown_job(self, tmp_path):
        with pytest.raises(UnknownJob):
            JobManager(ResultStore(tmp_path)).get("nope")

    def test_run_and_persist(self, tmp_path):
        manager = JobManager(ResultStore(tmp_path))
        manager.start()
        job = manager.submit(JobSpec.from_json(tiny_spec()))
        deadline = time.monotonic() + 30
        while job.state not in ("done", "failed"):
            assert time.monotonic() < deadline
            time.sleep(0.01)
        assert job.state == "done"
        assert job.trials_done == 5
        assert job.result["format"] == "repro-campaign-v1"
        assert job.result["aggregates"]["value"]["count"] == 5
        record = job_record(manager.jobs_dir, job.id)
        assert record["state"] == "done"
        assert record["result"] == job.result
        manager.drain()

    def test_identical_jobs_dedupe_through_store(self, tmp_path):
        manager = JobManager(ResultStore(tmp_path))
        manager.start()
        first = manager.submit(JobSpec.from_json(tiny_spec(n_trials=20)))
        second = manager.submit(JobSpec.from_json(tiny_spec(n_trials=20)))
        deadline = time.monotonic() + 30
        while not (first.state == "done" and second.state == "done"):
            assert time.monotonic() < deadline
            time.sleep(0.01)
        assert first.cache_hits == 0
        # acceptance bar is >= 95%; in practice it is 100%
        assert second.cache_hits >= 19
        assert deterministic(second.result) == deterministic(first.result)
        manager.drain()

    def test_namespaced_journals_never_collide(self, tmp_path):
        store = ResultStore(tmp_path)
        manager = JobManager(store)
        manager.start()
        a = manager.submit(JobSpec.from_json(tiny_spec()))
        b = manager.submit(JobSpec.from_json(tiny_spec()))
        deadline = time.monotonic() + 30
        while not (a.state == "done" and b.state == "done"):
            assert time.monotonic() < deadline
            time.sleep(0.01)
        journals = list((store.campaigns_dir / "jobs").rglob("*.binj"))
        # identical campaigns (same campaign key), two distinct journals
        assert len(journals) == 2
        assert {p.parent.name for p in journals} == {a.id, b.id}
        manager.drain()


# -- the HTTP service ----------------------------------------------------------


@pytest.fixture
def service(tmp_path):
    """A live ServiceApp on an ephemeral port, torn down by drain."""
    store = ResultStore(tmp_path / "store")
    app = ServiceApp(store, port=0, max_queue=3, job_workers=1)
    loop = asyncio.new_event_loop()
    thread = threading.Thread(target=loop.run_forever, daemon=True)
    thread.start()
    port = asyncio.run_coroutine_threadsafe(app.start(), loop).result(10)
    yield SimpleNamespace(
        app=app,
        store=store,
        port=port,
        client=ServiceClient(f"http://127.0.0.1:{port}"),
        loop=loop,
    )
    asyncio.run_coroutine_threadsafe(app.shutdown(), loop).result(60)
    loop.call_soon_threadsafe(loop.stop)
    thread.join(5)
    loop.close()


class TestService:
    def test_healthz(self, service):
        health = service.client.healthz()
        assert health["status"] == "ok"
        assert health["draining"] is False

    def test_submit_run_stream_complete(self, service):
        job = service.client.submit(tiny_spec())
        assert job["state"] in ("queued", "running")
        assert job["trials_total"] == 5
        events = list(service.client.events(job["id"], timeout_s=30))
        kinds = [e["kind"] for e in events]
        assert kinds[0] == "job"
        assert kinds.count("trial") == 5
        assert events[-1]["kind"] == "job"
        assert events[-1]["data"]["state"] == "done"
        # events are sequence-numbered for resumable replay
        assert [e["seq"] for e in events] == sorted(e["seq"] for e in events)
        final = service.client.wait(job["id"], timeout_s=30)
        assert final["state"] == "done"
        assert final["result"]["aggregates"]["value"]["count"] == 5

    def test_event_replay_from_seq(self, service):
        job = service.client.submit(tiny_spec())
        service.client.wait(job["id"], timeout_s=30)
        all_events = list(service.client.events(job["id"], timeout_s=10))
        tail = list(
            service.client.events(
                job["id"], since=all_events[2]["seq"], timeout_s=10
            )
        )
        assert tail == all_events[2:]

    def test_queue_full_gives_429(self, service):
        # one slow job occupies the worker; fill the 3-deep queue behind it
        running = service.client.submit(slow_spec(n_trials=200, sleep_s=0.05))
        deadline = time.monotonic() + 10
        while service.client.job(running["id"])["state"] != "running":
            assert time.monotonic() < deadline
            time.sleep(0.01)
        for seed in (11, 12, 13):
            service.client.submit(slow_spec(base_seed=seed))
        with pytest.raises(ServiceError) as err:
            service.client.submit(slow_spec(base_seed=14))
        assert err.value.status == 429
        service.client.cancel(running["id"])
        for record in service.client.jobs():
            service.client.cancel(record["id"])

    def test_priority_runs_first(self, service):
        blocker = service.client.submit(slow_spec(n_trials=100, sleep_s=0.05))
        deadline = time.monotonic() + 10
        while service.client.job(blocker["id"])["state"] != "running":
            assert time.monotonic() < deadline
            time.sleep(0.01)
        low = service.client.submit(tiny_spec(base_seed=21, priority=0))
        high = service.client.submit(tiny_spec(base_seed=22, priority=7))
        service.client.cancel(blocker["id"])
        high_final = service.client.wait(high["id"], timeout_s=30)
        low_final = service.client.wait(low["id"], timeout_s=30)
        assert high_final["started_utc"] < low_final["started_utc"]

    def test_cancel_mid_campaign(self, service):
        job = service.client.submit(slow_spec(n_trials=200, sleep_s=0.05))
        deadline = time.monotonic() + 10
        while service.client.job(job["id"])["trials_done"] < 2:
            assert time.monotonic() < deadline
            time.sleep(0.01)
        service.client.cancel(job["id"])
        final = service.client.wait(job["id"], timeout_s=30)
        assert final["state"] == "cancelled"
        assert 0 < final["trials_done"] < 200

    def test_sweep_job_over_http(self, service):
        job = service.client.submit(
            tiny_spec(
                kind="sweep", n_trials=3, parameter="offset",
                parameter_label="offset_units", values=[1.0, 2.0],
            )
        )
        final = service.client.wait(job["id"], timeout_s=30)
        assert final["state"] == "done"
        doc = final["result"]
        assert doc["format"] == "repro-sweep-v1"
        assert doc["parameter"] == "offset_units"
        assert doc["values"] == [1.0, 2.0]
        # each sweep point aggregated all three of its trials
        assert [point["value"]["count"] for point in doc["aggregates"]] == [3, 3]
        assert final["trials_done"] == 6

    def test_second_identical_submission_hits_store(self, service):
        first = service.client.submit(tiny_spec(n_trials=20))
        service.client.wait(first["id"], timeout_s=30)
        second = service.client.submit(tiny_spec(n_trials=20))
        final = service.client.wait(second["id"], timeout_s=30)
        assert final["cache_hits"] >= 19  # >= 95% of 20
        assert deterministic(final["result"]) == deterministic(
            service.client.job(first["id"])["result"]
        )

    def test_bad_spec_gives_400(self, service):
        with pytest.raises(ServiceError) as err:
            service.client.submit({"schema": JOB_SCHEMA, "kind": "mystery"})
        assert err.value.status == 400

    def test_unknown_job_gives_404(self, service):
        with pytest.raises(ServiceError) as err:
            service.client.job("doesnotexist")
        assert err.value.status == 404

    def test_unknown_route_gives_404(self, service):
        with pytest.raises(ServiceError) as err:
            service.client._request("GET", "/v2/anything")
        assert err.value.status == 404

    def test_metrics_endpoint(self, service):
        job = service.client.submit(tiny_spec())
        service.client.wait(job["id"], timeout_s=30)
        text = service.client.metrics()
        assert isinstance(text, str)  # Prometheus text (possibly empty:
        # the fixture drives app.start() directly, so no registry is
        # installed; serve_forever() installs one — see the SIGTERM test)


class TestTelemetryOverHttp:
    def test_trace_id_round_trips_submit_to_span_tree(self, service):
        """One trace id: submitted in the plan, recoverable as a span tree."""
        from repro.obs import TraceContext

        trace = TraceContext.new()
        spec = tiny_spec()
        spec["plan"]["trace"] = trace.to_dict()
        job = service.client.submit(spec)
        assert job["trace_id"] == trace.trace_id
        final = service.client.wait(job["id"], timeout_s=30)
        assert final["trace_id"] == trace.trace_id
        # every event record is stamped with the same trace id
        events = list(service.client.events(job["id"], timeout_s=10))
        assert events
        assert all(e["data"]["trace_id"] == trace.trace_id for e in events)
        # the persisted telemetry snapshot reconstructs the span tree
        telemetry = final["telemetry"]
        assert telemetry["schema"] == "repro-metrics-snapshot-v1"
        assert telemetry["trace"]["trace_id"] == trace.trace_id
        paths = {tuple(row["path"]) for row in telemetry["spans"]}
        assert ("job",) in paths
        assert ("job", "campaign", "trial") in paths

    def test_server_mints_trace_when_client_sends_none(self, service):
        job = service.client.submit(tiny_spec())
        final = service.client.wait(job["id"], timeout_s=30)
        assert len(final["trace_id"]) == 32

    def test_event_stream_marks_truncation(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        app = ServiceApp(
            store, port=0, max_queue=3, job_workers=1, event_retention=3
        )
        loop = asyncio.new_event_loop()
        thread = threading.Thread(target=loop.run_forever, daemon=True)
        thread.start()
        port = asyncio.run_coroutine_threadsafe(app.start(), loop).result(10)
        client = ServiceClient(f"http://127.0.0.1:{port}")
        try:
            job = client.submit(tiny_spec(n_trials=8))
            client.wait(job["id"], timeout_s=30)
            events = list(client.events(job["id"], timeout_s=10))
            # 8 trials + job transitions overflow a 3-deep log: the replay
            # opens with an explicit truncation marker, then the survivors
            assert events[0]["kind"] == "truncated"
            assert events[0]["requested_since"] == 0
            assert events[0]["dropped"] > 0
            survivors = events[1:]
            assert len(survivors) == 3
            assert [e["seq"] for e in survivors] == sorted(
                e["seq"] for e in survivors
            )
            # asking from the surviving window is not marked truncated
            tail = list(
                client.events(
                    job["id"], since=survivors[0]["seq"], timeout_s=10
                )
            )
            assert tail == survivors
        finally:
            asyncio.run_coroutine_threadsafe(app.shutdown(), loop).result(60)
            loop.call_soon_threadsafe(loop.stop)
            thread.join(5)
            loop.close()


class TestDrainAndResume:
    def test_drain_interrupts_and_restart_resumes_bit_identical(self, tmp_path):
        store_root = tmp_path / "store"

        def run_service(app):
            loop = asyncio.new_event_loop()
            thread = threading.Thread(target=loop.run_forever, daemon=True)
            thread.start()
            port = asyncio.run_coroutine_threadsafe(app.start(), loop).result(10)
            return loop, thread, ServiceClient(f"http://127.0.0.1:{port}")

        def stop_service(app, loop, thread):
            asyncio.run_coroutine_threadsafe(app.shutdown(), loop).result(60)
            loop.call_soon_threadsafe(loop.stop)
            thread.join(5)
            loop.close()

        # reference result: the same spec run to completion elsewhere
        ref_manager = JobManager(ResultStore(tmp_path / "ref"))
        ref_manager.start()
        ref_job = ref_manager.submit(
            JobSpec.from_json(slow_spec(n_trials=12, sleep_s=0.05))
        )
        deadline = time.monotonic() + 60
        while ref_job.state != "done":
            assert time.monotonic() < deadline
            time.sleep(0.01)
        ref_manager.drain()

        app1 = ServiceApp(ResultStore(store_root), port=0)
        loop1, thread1, client1 = run_service(app1)
        job = client1.submit(slow_spec(n_trials=12, sleep_s=0.05))
        deadline = time.monotonic() + 30
        while client1.job(job["id"])["trials_done"] < 3:
            assert time.monotonic() < deadline
            time.sleep(0.01)
        stop_service(app1, loop1, thread1)  # graceful drain mid-campaign

        record = job_record(store_root / "serve" / "jobs", job["id"])
        assert record["state"] == "interrupted"
        assert 0 < record["trials_done"] < 12
        trace_id = record["trace_id"]
        assert trace_id  # minted at submit, persisted with the interrupt
        # the namespaced checkpoint journal survived the drain, and its
        # events carry the job's trace id
        from repro.store.binary import load_journal

        journal_dir = store_root / "campaigns" / "jobs" / job["id"]
        journals = list(journal_dir.glob("*.binj"))
        assert journals
        journal_events = load_journal(journals[0])[0]
        trial_events = [e for e in journal_events if e.get("kind") == "trial"]
        assert trial_events
        assert all(e["trace_id"] == trace_id for e in trial_events)

        app2 = ServiceApp(ResultStore(store_root), port=0)
        loop2, thread2, client2 = run_service(app2)
        final = client2.wait(job["id"], timeout_s=60)
        assert final["state"] == "done"
        assert final["resumed"] is True
        assert final["cache_hits"] > 0  # completed trials came from the store
        # the trace identity survives the restart-recover-resume cycle
        assert final["trace_id"] == trace_id
        paths = {tuple(row["path"]) for row in final["telemetry"]["spans"]}
        assert ("job",) in paths
        # bit-identical aggregates vs an uninterrupted run of the same spec
        assert deterministic(final["result"]) == deterministic(ref_job.result)
        stop_service(app2, loop2, thread2)


@pytest.mark.slow
class TestSigterm:
    def test_kill_term_mid_campaign_then_restart(self, tmp_path):
        """The real `repro serve` process: SIGTERM drain + resume."""
        trial_mod = tmp_path / "slowmod.py"
        trial_mod.write_text(
            "import time\n"
            "from dataclasses import dataclass\n\n\n"
            "@dataclass(frozen=True)\n"
            "class SlowTrial:\n"
            "    sleep_s: float = 0.2\n\n"
            "    def __call__(self, trial_index, seed):\n"
            "        time.sleep(self.sleep_s)\n"
            "        return {'value': float(seed % 97)}\n"
        )
        store_root = tmp_path / "store"
        env = dict(os.environ)
        repo_src = os.path.join(os.path.dirname(__file__), "..", "src")
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.abspath(repo_src), str(tmp_path)]
            + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
        )

        def start_server():
            proc = subprocess.Popen(
                [
                    sys.executable, "-m", "repro.experiments.cli", "serve",
                    "--port", "0", "--cache-dir", str(store_root),
                ],
                env=env,
                stdout=subprocess.PIPE,
                stderr=subprocess.STDOUT,
                text=True,
            )
            while True:
                line = proc.stdout.readline()
                assert line, "server exited before listening"
                if "listening on http://" in line:
                    break
            port = int(line.rsplit(":", 1)[1].split()[0])
            return proc, ServiceClient(f"http://127.0.0.1:{port}")

        proc, client = start_server()
        try:
            spec = {
                "schema": JOB_SCHEMA,
                "kind": "campaign",
                "trial": {"type": "slowmod.SlowTrial",
                          "params": {"sleep_s": 0.2}},
                "n_trials": 50,
                "base_seed": 9,
                "plan": {"schema": PLAN_SCHEMA},
            }
            job = client.submit(spec)
            deadline = time.monotonic() + 30
            while client.job(job["id"])["trials_done"] < 2:
                assert time.monotonic() < deadline
                time.sleep(0.05)
            proc.send_signal(signal.SIGTERM)
            proc.wait(timeout=30)
            assert proc.returncode == 0  # graceful drain, clean exit
        finally:
            if proc.poll() is None:
                proc.kill()

        record = job_record(store_root / "serve" / "jobs", job["id"])
        assert record["state"] == "interrupted"
        interrupted_done = record["trials_done"]
        assert 0 < interrupted_done < 50

        proc, client = start_server()
        try:
            final = client.wait(job["id"], timeout_s=120)
            assert final["state"] == "done"
            assert final["resumed"] is True
            assert final["cache_hits"] >= interrupted_done - 1
            assert final["result"]["aggregates"]["value"]["count"] == 50
            proc.send_signal(signal.SIGTERM)
            proc.wait(timeout=30)
            assert proc.returncode == 0
        finally:
            if proc.poll() is None:
                proc.kill()
