"""Tests for repro.protocols.gmle — the estimator and its statistics."""

import math

import pytest

from repro.protocols.gmle import (
    FrameObservation,
    GMLEProtocol,
    OPTIMAL_LOAD,
    fisher_information,
    gmle_frame_size,
    mle_estimate,
    normal_quantile,
    relative_halfwidth,
)
from repro.protocols.transport import CCMTransport, TraditionalTransport


class TestNormalQuantile:
    def test_median(self):
        assert normal_quantile(0.5) == pytest.approx(0.0, abs=1e-9)

    def test_known_values(self):
        assert normal_quantile(0.95) == pytest.approx(1.6449, abs=1e-3)
        assert normal_quantile(0.975) == pytest.approx(1.9600, abs=1e-3)
        assert normal_quantile(0.05) == pytest.approx(-1.6449, abs=1e-3)

    def test_symmetry(self):
        for p in (0.6, 0.9, 0.99, 0.999):
            assert normal_quantile(p) == pytest.approx(
                -normal_quantile(1 - p), abs=1e-8
            )

    def test_tails(self):
        assert normal_quantile(1e-6) < -4.5
        assert normal_quantile(1 - 1e-6) > 4.5

    def test_domain(self):
        with pytest.raises(ValueError):
            normal_quantile(0.0)
        with pytest.raises(ValueError):
            normal_quantile(1.0)


class TestFrameSize:
    def test_paper_value(self):
        """α = 95 %, β = 5 % must give the paper's f = 1671 (Sec. VI-A)."""
        assert gmle_frame_size(0.95, 0.05) == 1671

    def test_tighter_accuracy_needs_bigger_frame(self):
        assert gmle_frame_size(0.95, 0.01) > gmle_frame_size(0.95, 0.05)
        assert gmle_frame_size(0.99, 0.05) > gmle_frame_size(0.95, 0.05)

    def test_optimal_load_value(self):
        # λ* solves λ e^λ = 2(e^λ − 1)
        lam = OPTIMAL_LOAD
        assert lam * math.exp(lam) == pytest.approx(
            2 * (math.exp(lam) - 1), rel=1e-9
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            gmle_frame_size(alpha=1.0)
        with pytest.raises(ValueError):
            gmle_frame_size(beta=0.0)


class TestFrameObservation:
    def test_validation(self):
        with pytest.raises(ValueError):
            FrameObservation(10, 1.0, 11)
        with pytest.raises(ValueError):
            FrameObservation(10, 0.0, 5)

    def test_log_avoid_negative(self):
        assert FrameObservation(10, 0.5, 5).log_avoid < 0


class TestMLE:
    def _observe(self, n, f, p):
        """Expected idle count for a synthetic frame."""
        q = (1 - p / f) ** n
        return FrameObservation(f, p, round(f * q))

    def test_recovers_known_n_single_frame(self):
        obs = [self._observe(1000, 4096, 1.0)]
        assert mle_estimate(obs) == pytest.approx(1000, rel=0.02)

    def test_recovers_with_sampling(self):
        obs = [self._observe(10_000, 1671, 0.2657)]
        assert mle_estimate(obs) == pytest.approx(10_000, rel=0.02)

    def test_multiple_frames_combine(self):
        obs = [
            self._observe(5000, 2048, 0.5),
            self._observe(5000, 2048, 0.6),
            self._observe(5000, 1024, 0.3),
        ]
        assert mle_estimate(obs) == pytest.approx(5000, rel=0.02)

    def test_all_idle_means_zero(self):
        obs = [FrameObservation(64, 1.0, 64)]
        assert mle_estimate(obs) == 0.0

    def test_saturated_frames_rejected(self):
        with pytest.raises(ValueError):
            mle_estimate([FrameObservation(64, 1.0, 0)])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mle_estimate([])

    def test_monotone_in_idle_count(self):
        low_idle = mle_estimate([FrameObservation(256, 1.0, 40)])
        high_idle = mle_estimate([FrameObservation(256, 1.0, 120)])
        assert low_idle > high_idle


class TestInformationAndHalfwidth:
    def test_information_positive(self):
        obs = [FrameObservation(1671, 0.27, 800)]
        assert fisher_information(obs, 10_000) > 0

    def test_more_frames_tighter_halfwidth(self):
        one = [FrameObservation(1671, 0.27, 780)]
        two = one * 2
        assert relative_halfwidth(two, 10_000, 0.95) < relative_halfwidth(
            one, 10_000, 0.95
        )

    def test_paper_frame_meets_beta_in_one_frame(self):
        """f = 1671 at optimal load: one frame's halfwidth ≤ 5 %."""
        n = 10_000
        p = OPTIMAL_LOAD * 1671 / n
        q = (1 - p / 1671) ** n
        obs = [FrameObservation(1671, p, round(1671 * q))]
        hw = relative_halfwidth(obs, n, 0.95)
        assert hw <= 0.0505

    def test_degenerate_inputs(self):
        assert relative_halfwidth([], 100, 0.95) == math.inf
        assert relative_halfwidth(
            [FrameObservation(10, 1.0, 5)], 0.0, 0.95
        ) == math.inf


class TestProtocolOverTraditional:
    def test_estimate_accurate(self):
        ids = list(range(1, 3001))
        transport = TraditionalTransport(ids)
        protocol = GMLEProtocol(alpha=0.95, beta=0.05)
        result = protocol.estimate(transport, seed=11)
        assert result.estimate == pytest.approx(3000, rel=0.12)
        assert result.frames >= 1
        assert result.rough_frames >= 1

    def test_known_rough_estimate_skips_phase_one(self):
        ids = list(range(1, 2001))
        transport = TraditionalTransport(ids)
        protocol = GMLEProtocol(known_rough_estimate=2000)
        result = protocol.estimate(transport, seed=4)
        assert result.rough_frames == 0
        assert result.estimate == pytest.approx(2000, rel=0.12)

    def test_empty_population(self):
        transport = TraditionalTransport([])
        protocol = GMLEProtocol()
        result = protocol.estimate(transport, seed=2)
        assert result.estimate == 0.0

    def test_halfwidth_reported(self):
        transport = TraditionalTransport(list(range(1, 1001)))
        result = GMLEProtocol(known_rough_estimate=1000).estimate(
            transport, seed=9
        )
        assert result.achieved_halfwidth <= 0.06

    def test_config_validation(self):
        with pytest.raises(ValueError):
            GMLEProtocol(frame_size=-1)
        with pytest.raises(ValueError):
            GMLEProtocol(max_frames=0)


class TestProtocolOverCCM:
    def test_estimate_over_multihop(self, small_network):
        transport = CCMTransport(small_network)
        n_reachable = int(small_network.reachable_mask.sum())
        protocol = GMLEProtocol(
            alpha=0.95, beta=0.05, known_rough_estimate=n_reachable
        )
        result = protocol.estimate(transport, seed=21)
        assert result.estimate == pytest.approx(n_reachable, rel=0.15)

    def test_ccm_and_traditional_agree_exactly(self, small_network):
        """Theorem 1 at the protocol level: same seeds -> same bitmaps ->
        bit-identical estimates."""
        reachable = small_network.tag_ids[small_network.reachable_mask]
        ccm = CCMTransport(small_network)
        trad = TraditionalTransport(reachable)
        p1 = GMLEProtocol(known_rough_estimate=400)
        p2 = GMLEProtocol(known_rough_estimate=400)
        r_ccm = p1.estimate(ccm, seed=77)
        r_trad = p2.estimate(trad, seed=77)
        assert r_ccm.estimate == pytest.approx(r_trad.estimate, rel=1e-12)
