"""Tests for repro.obs — metrics, spans, exporters, manifests."""

import json
import threading

import pytest

from repro.core.session import CCMConfig, run_session
from repro.obs import (
    EventBus,
    MetricsRegistry,
    RunManifest,
    manifest_path_for,
    metrics as obs_metrics,
    metrics_to_ndjson,
    profile_rows,
    render_profile,
    render_prometheus,
    use_registry,
    write_manifest_alongside,
)
from repro.protocols.transport import frame_picks


class TestMetricPrimitives:
    def test_counter_increments(self):
        reg = MetricsRegistry()
        reg.inc("hits")
        reg.inc("hits", 4)
        assert reg.counter("hits").value == 5.0

    def test_counter_rejects_decrease(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.inc("hits", -1)

    def test_gauge_last_write_wins(self):
        reg = MetricsRegistry()
        reg.set_gauge("depth", 3)
        reg.set_gauge("depth", 7)
        assert reg.gauge("depth").value == 7.0

    def test_histogram_buckets_and_summary(self):
        reg = MetricsRegistry()
        hist = reg.histogram("lat", buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 0.5, 5.0):
            hist.observe(v)
        assert hist.counts == [1, 2, 1]  # <=0.1, <=1.0, +inf
        assert hist.count == 4
        assert hist.minimum == 0.05 and hist.maximum == 5.0
        assert hist.mean == pytest.approx(6.05 / 4)

    def test_histogram_rejects_unsorted_buckets(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.histogram("bad", buckets=(1.0, 0.1))

    def test_same_name_returns_same_metric(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")
        assert reg.histogram("h") is reg.histogram("h")


class TestRegistrySwap:
    def test_default_is_noop_null_registry(self):
        obs = obs_metrics.get_registry()
        assert not obs.enabled
        obs.inc("ignored")
        obs.observe("ignored", 1.0)
        with obs.span("ignored"):
            pass
        assert obs_metrics.get_registry().span_stats() == {}

    def test_use_registry_installs_and_restores(self):
        before = obs_metrics.get_registry()
        with use_registry() as reg:
            assert obs_metrics.get_registry() is reg
            obs_metrics.OBS.inc("seen")
        assert obs_metrics.get_registry() is before
        assert reg.counter("seen").value == 1.0

    def test_use_registry_restores_on_exception(self):
        before = obs_metrics.get_registry()
        with pytest.raises(RuntimeError):
            with use_registry():
                raise RuntimeError("boom")
        assert obs_metrics.get_registry() is before


class TestSpans:
    def test_nesting_records_paths(self):
        reg = MetricsRegistry()
        with reg.span("outer"):
            with reg.span("inner"):
                pass
            with reg.span("inner"):
                pass
        stats = reg.span_stats()
        assert stats[("outer",)][0] == 1
        assert stats[("outer", "inner")][0] == 2

    def test_exception_sweeps_abandoned_children(self):
        reg = MetricsRegistry()
        with pytest.raises(RuntimeError):
            with reg.span("outer"):
                span = reg.span("leaked")
                span.__enter__()  # never exited
                raise RuntimeError("boom")
        # The stack is clean: a later root span nests at depth 1.
        with reg.span("after"):
            pass
        assert ("after",) in reg.span_stats()

    def test_self_time_sums_to_parent_cumulative(self):
        reg = MetricsRegistry()
        with reg.span("parent"):
            with reg.span("a"):
                pass
            with reg.span("b"):
                pass
        rows = {r.path: r for r in profile_rows(reg)}
        parent = rows[("parent",)]
        child_sum = (
            rows[("parent", "a")].cumulative_s + rows[("parent", "b")].cumulative_s
        )
        assert parent.self_s == pytest.approx(
            parent.cumulative_s - child_sum, abs=1e-9
        )

    def test_threads_get_independent_stacks(self):
        reg = MetricsRegistry()

        def work():
            with reg.span("worker"):
                pass

        with reg.span("main"):
            t = threading.Thread(target=work)
            t.start()
            t.join()
        stats = reg.span_stats()
        assert ("worker",) in stats  # not nested under main's stack
        assert ("main", "worker") not in stats

    def test_render_profile_orders_and_covers(self):
        reg = MetricsRegistry()
        with reg.span("root"):
            with reg.span("leaf"):
                pass
        text = render_profile(reg, wall_s=1.0, sort="tree")
        assert "root" in text and "leaf" in text
        assert "coverage:" in text
        assert render_profile(MetricsRegistry()) == "(no spans recorded)"


class TestEventBus:
    def test_publish_fans_out_in_order(self):
        bus = EventBus()
        seen = []
        bus.subscribe(lambda k, r, d: seen.append(("a", k, r, dict(d))))
        bus.subscribe(lambda k, r, d: seen.append(("b", k, r, dict(d))))
        bus.publish("frame", 2, transmitters=5)
        assert seen == [
            ("a", "frame", 2, {"transmitters": 5}),
            ("b", "frame", 2, {"transmitters": 5}),
        ]

    def test_unsubscribe(self):
        bus = EventBus()
        seen = []
        fn = bus.subscribe(lambda k, r, d: seen.append(k))
        bus.unsubscribe(fn)
        bus.publish("frame", 1)
        assert seen == [] and len(bus) == 0


class TestExporters:
    def _populated(self):
        reg = MetricsRegistry()
        reg.inc("ccm_rounds_total", 3)
        reg.set_gauge("last_rounds", 3)
        reg.observe("seconds", 0.02)
        with reg.span("session"):
            pass
        return reg

    def test_ndjson_lines_parse_and_sort(self, tmp_path):
        reg = self._populated()
        path = tmp_path / "deep" / "metrics.ndjson"
        text = metrics_to_ndjson(reg, path)
        assert path.read_text() == text
        records = [json.loads(line) for line in text.splitlines()]
        assert [r["type"] for r in records] == [
            "counter", "gauge", "histogram", "span",
        ]
        assert records[0] == {
            "name": "ccm_rounds_total", "type": "counter", "value": 3.0
        }
        assert records[3]["path"] == "session"

    def test_empty_registry_ndjson(self):
        assert metrics_to_ndjson(MetricsRegistry()) == ""

    def test_prometheus_format(self):
        text = render_prometheus(self._populated())
        assert "# TYPE ccm_rounds_total counter" in text
        assert "ccm_rounds_total 3.0" in text
        assert '_bucket{le="+Inf"} 1' in text
        assert "seconds_sum 0.02" in text
        assert 'span_seconds_total{path="session"}' in text

    def test_prometheus_cumulative_buckets(self):
        reg = MetricsRegistry()
        reg.observe("v", 0.05, buckets=(0.1, 1.0))
        reg.observe("v", 0.5, buckets=(0.1, 1.0))
        text = render_prometheus(reg)
        assert 'v_bucket{le="0.1"} 1' in text
        assert 'v_bucket{le="1.0"} 2' in text
        assert 'v_bucket{le="+Inf"} 2' in text


class TestRunManifest:
    def test_capture_and_roundtrip(self, tmp_path):
        manifest = RunManifest.capture(
            seed=99, config={"n": 10}, engine="packed", elapsed_s=1.5,
            extra={"note": "test"},
        )
        assert manifest.python_version
        assert manifest.created_utc.endswith("Z")
        path = tmp_path / "run.manifest.json"
        manifest.write(path)
        back = RunManifest.from_json(path.read_text())
        assert back == manifest
        assert json.loads(path.read_text())["format"] == "repro-run-manifest-v1"

    def test_from_json_rejects_other_formats(self):
        with pytest.raises(ValueError):
            RunManifest.from_json('{"format": "something-else"}')

    def test_manifest_path_for(self):
        assert str(manifest_path_for("results/sweep.json")).endswith(
            "results/sweep.manifest.json"
        )

    def test_write_manifest_alongside(self, tmp_path):
        artifact = tmp_path / "sweep.csv"
        artifact.write_text("x\n")
        path = write_manifest_alongside(artifact, seed=1, engine="bigint")
        assert path == tmp_path / "sweep.manifest.json"
        assert RunManifest.from_json(path.read_text()).engine == "bigint"

    def test_git_revision_in_checkout(self):
        manifest = RunManifest.capture()
        # The test suite runs inside the repo checkout.
        assert manifest.git_rev is None or len(manifest.git_rev) == 40


class TestInstrumentedSession:
    @pytest.mark.parametrize("engine", ["bigint", "packed"])
    def test_session_records_phases_and_counters(self, small_network, engine):
        picks = frame_picks(small_network.tag_ids, 64, 1.0, seed=1)
        with use_registry() as reg:
            result = run_session(
                small_network, picks, config=CCMConfig(frame_size=64),
                engine=engine,
            )
        counters = reg.snapshot()["counters"]
        assert counters["ccm_sessions_total"] == 1.0
        assert counters["ccm_rounds_total"] == float(result.rounds)
        assert counters["ccm_session_slots_total"] == float(result.total_slots)
        stats = reg.span_stats()
        assert stats[("session",)][0] == 1
        assert stats[("session", "round")][0] == result.rounds
        for phase in ("data_frame", "indicator", "checking"):
            assert ("session", "round", phase) in stats
        assert reg.gauge("ccm_last_session_rounds").value == float(result.rounds)

    def test_engines_agree_on_protocol_counters(self, small_network):
        picks = frame_picks(small_network.tag_ids, 64, 1.0, seed=1)
        values = {}
        for engine in ("bigint", "packed"):
            with use_registry() as reg:
                run_session(
                    small_network, picks, config=CCMConfig(frame_size=64),
                    engine=engine,
                )
            counters = reg.snapshot()["counters"]
            values[engine] = {
                k: v for k, v in counters.items()
                if k.startswith("ccm_") and k != "ccm_session_seconds"
            }
        assert values["bigint"] == values["packed"]

    def test_disabled_session_records_nothing(self, small_network):
        picks = frame_picks(small_network.tag_ids, 64, 1.0, seed=1)
        run_session(small_network, picks, config=CCMConfig(frame_size=64))
        assert obs_metrics.get_registry().span_stats() == {}
