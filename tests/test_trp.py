"""Tests for repro.protocols.trp — missing-tag detection."""

import numpy as np
import pytest

from repro.protocols.transport import CCMTransport, TraditionalTransport
from repro.protocols.trp import (
    TRPProtocol,
    detection_probability,
    trp_frame_size,
)


class TestFrameSizing:
    def test_monotone_in_population(self):
        assert trp_frame_size(20_000, 50, 0.95) > trp_frame_size(10_000, 50, 0.95)

    def test_monotone_in_delta(self):
        assert trp_frame_size(10_000, 50, 0.99) > trp_frame_size(10_000, 50, 0.9)

    def test_larger_tolerance_smaller_frame(self):
        assert trp_frame_size(10_000, 100, 0.95) < trp_frame_size(10_000, 10, 0.95)

    def test_meets_requirement(self):
        f = trp_frame_size(10_000, 50, 0.95)
        assert detection_probability(10_000, f, 50) >= 0.95

    def test_is_tight(self):
        f = trp_frame_size(10_000, 50, 0.95)
        assert detection_probability(10_000, f - 50, 50) < 0.95

    def test_paper_constant_note(self):
        """The principled formula gives ~3500 at the paper's (δ, m); the
        paper's stated 3228 corresponds to δ ≈ 0.9 under it — documented in
        the docstring and EXPERIMENTS.md."""
        assert trp_frame_size(10_000, 50, 0.95) == 3499
        assert abs(trp_frame_size(10_000, 50, 0.90) - 3228) < 25

    def test_validation(self):
        with pytest.raises(ValueError):
            trp_frame_size(10, 0, 0.95)
        with pytest.raises(ValueError):
            trp_frame_size(10, 10, 0.95)
        with pytest.raises(ValueError):
            trp_frame_size(100, 10, 1.0)


class TestDetectionProbability:
    def test_zero_missing(self):
        assert detection_probability(1000, 512, 0) == 0.0

    def test_increases_with_missing(self):
        probs = [detection_probability(1000, 256, m) for m in (1, 5, 20)]
        assert probs[0] < probs[1] < probs[2]

    def test_increases_with_frame(self):
        assert detection_probability(1000, 2048, 5) > detection_probability(
            1000, 256, 5
        )

    def test_all_missing_certain(self):
        assert detection_probability(100, 64, 100) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            detection_probability(10, 64, 11)


class TestDetectOverTraditional:
    def _transport(self, present_ids):
        return TraditionalTransport(present_ids)

    def test_no_missing_no_alarm(self):
        ids = list(range(1, 501))
        result = TRPProtocol(frame_size=1024).detect(
            self._transport(ids), ids, seed=3
        )
        assert not result.detected
        assert result.missing_slots == []
        assert result.suspicious_ids == []

    def test_missing_tag_detected_with_big_frame(self):
        ids = list(range(1, 501))
        present = [t for t in ids if t != 250]
        # Frame far larger than n: the missing tag's slot is almost surely
        # unshared, so its absence is visible.
        result = TRPProtocol(frame_size=1 << 14).detect(
            self._transport(present), ids, seed=3
        )
        assert result.detected
        assert 250 in result.suspicious_ids

    def test_suspicious_ids_are_truly_absent(self):
        ids = list(range(1, 2001))
        gone = set(range(100, 140))
        present = [t for t in ids if t not in gone]
        result = TRPProtocol(frame_size=8192).detect(
            self._transport(present), ids, seed=9
        )
        # Zero false positives: every suspicious ID is actually missing.
        assert set(result.suspicious_ids) <= gone

    def test_empty_inventory_rejected(self):
        with pytest.raises(ValueError):
            TRPProtocol(frame_size=64).detect(self._transport([1]), [], seed=0)

    def test_auto_frame_sizing(self):
        ids = list(range(1, 1001))
        protocol = TRPProtocol(delta=0.95, tolerance=10)
        result = protocol.detect(self._transport(ids), ids, seed=0)
        assert result.predicted.size == trp_frame_size(1000, 10, 0.95)

    def test_empirical_detection_rate(self):
        """Measured detection rate across seeds ~ analytic prediction."""
        ids = list(range(1, 801))
        gone = set(range(1, 9))  # 8 missing
        present = [t for t in ids if t not in gone]
        f = 256
        protocol = TRPProtocol(frame_size=f)
        hits = sum(
            protocol.detect(self._transport(present), ids, seed=s).detected
            for s in range(60)
        )
        predicted = detection_probability(800, f, 8)
        assert abs(hits / 60 - predicted) < 0.17

    def test_repeated_executions_raise_detection(self):
        ids = list(range(1, 801))
        present = [t for t in ids if t > 4]  # 4 missing
        f = 128
        protocol = TRPProtocol(frame_size=f)
        single_hits = sum(
            protocol.detect(self._transport(present), ids, seed=s).detected
            for s in range(40)
        )
        multi_hits = sum(
            protocol.detect_repeated(
                self._transport(present), ids, executions=4, seed=s
            ).detected
            for s in range(40)
        )
        assert multi_hits >= single_hits

    def test_detect_repeated_accounts_all_slots(self):
        ids = list(range(1, 101))
        transport = self._transport(ids)
        result = TRPProtocol(frame_size=64).detect_repeated(
            transport, ids, executions=3, seed=0
        )
        assert result.executions == 3
        assert result.slots.total_slots == 3 * 64

    def test_detect_repeated_validation(self):
        ids = [1]
        with pytest.raises(ValueError):
            TRPProtocol(frame_size=8).detect_repeated(
                self._transport(ids), ids, executions=0
            )


class TestDetectOverCCM:
    def test_missing_tags_detected_through_multihop(self, small_network):
        """Remove tags physically; the CCM bitmap must reveal them exactly
        as a single-hop reader would (Theorem 1 applied to TRP)."""
        known_ids = [int(t) for t in small_network.tag_ids]
        rng = np.random.default_rng(8)
        gone_idx = rng.choice(small_network.n_tags, size=25, replace=False)
        keep = np.ones(small_network.n_tags, dtype=bool)
        keep[gone_idx] = False
        present_net = small_network.subset(keep)
        # Keep the comparison honest: only consider removals that leave the
        # remaining network connected to the reader.
        reachable_ids = set(
            int(t) for t in present_net.tag_ids[present_net.reachable_mask]
        )
        transport = CCMTransport(present_net)
        trad = TraditionalTransport(sorted(reachable_ids))
        protocol = TRPProtocol(frame_size=4096)
        ccm_result = protocol.detect(transport, known_ids, seed=13)
        trad_result = TRPProtocol(frame_size=4096).detect(
            trad, known_ids, seed=13
        )
        if present_net.is_fully_reachable():
            assert ccm_result.missing_slots == trad_result.missing_slots
            assert ccm_result.suspicious_ids == trad_result.suspicious_ids
        assert ccm_result.detected  # 25 missing out of 400 with f=4096
