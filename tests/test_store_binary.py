"""The ``repro-record-bin-v1`` container: round-trip, rejection, parity.

Property tests (hypothesis) drive the encoder/decoder over the full
trial-record value domain — nested dicts/lists, arbitrary-precision
ints, exact doubles, unicode, bytes, and :class:`WordBitmap` word
payloads from empty to multi-thousand-bit — and check three contracts:

* **round-trip**: ``decode(encode(v)) == v`` with float bit-exactness,
  and the decoded value canonicalizes to byte-identical JSON (the
  addressing form is untouched by the storage form);
* **rejection**: any truncation or single flipped byte of a container
  either decodes to the identical value (a flip inside a same-length
  varint encoding, say) or raises :class:`BinaryFormatError` — never a
  silently different value;
* **canonical parity**: NaN/Infinity are rejected exactly where
  canonical JSON rejects them, and values canonical JSON refuses
  (sets, arbitrary objects) refuse here too.
"""

from __future__ import annotations

import io
import math
from array import array

import pytest
from hypothesis import given, settings, strategies as st

from repro.store.binary import (
    BINARY_FORMAT,
    HEADER_SIZE,
    RECORD_TYPE_JOURNAL,
    RECORD_TYPE_TRIAL,
    BinaryFormatError,
    WordBitmap,
    append_journal_frame,
    decode_record,
    encode_record,
    load_journal,
    read_journal_frames,
    read_record,
    write_journal_header,
    write_record,
)
from repro.store.canonical import canonical_bytes, canonical_json


# -- value-domain strategies ---------------------------------------------------

scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**70), max_value=2**70),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=40),
)


def bitmaps(max_bits: int = 4096):
    return st.builds(
        WordBitmap.from_bits,
        st.lists(st.booleans(), min_size=0, max_size=max_bits),
    )


values = st.recursive(
    st.one_of(scalars, bitmaps(max_bits=256)),
    lambda children: st.one_of(
        st.lists(children, max_size=5),
        st.dictionaries(st.text(max_size=12), children, max_size=5),
    ),
    max_leaves=24,
)

#: JSON-only domain (no WordBitmap, no bytes) for canonical-parity checks.
json_values = st.recursive(
    scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=5),
        st.dictionaries(st.text(max_size=12), children, max_size=5),
    ),
    max_leaves=24,
)


def _assert_same(a, b):
    """Structural equality with float bit-exactness (0.0 != -0.0 here)."""
    assert type(b) in (type(a),) or (
        isinstance(a, (list, tuple)) and isinstance(b, list)
    ), (a, b)
    if isinstance(a, float):
        assert math.copysign(1, a) == math.copysign(1, b)
        assert a.hex() == b.hex()
    elif isinstance(a, dict):
        assert sorted(a) == sorted(b)
        for k in a:
            _assert_same(a[k], b[k])
    elif isinstance(a, (list, tuple)):
        assert len(a) == len(b)
        for x, y in zip(a, b):
            _assert_same(x, y)
    else:
        assert a == b


class TestRoundTrip:
    @settings(max_examples=200, deadline=None)
    @given(values)
    def test_full_domain_round_trips(self, value):
        decoded, record_type = decode_record(
            encode_record(value, RECORD_TYPE_TRIAL)
        )
        assert record_type == RECORD_TYPE_TRIAL
        _assert_same(value, decoded)

    @settings(max_examples=100, deadline=None)
    @given(values)
    def test_decoded_value_addresses_identically(self, value):
        """Storage format never leaks into the content address."""
        decoded, _ = decode_record(encode_record(value))
        assert canonical_bytes(decoded) == canonical_bytes(value)

    @settings(max_examples=100, deadline=None)
    @given(values)
    def test_stream_and_buffer_decoders_agree(self, value):
        data = encode_record(value)
        streamed, _ = read_record(io.BytesIO(data))
        buffered, _ = decode_record(data)
        _assert_same(streamed, buffered)

    @settings(max_examples=100, deadline=None)
    @given(st.lists(st.booleans(), min_size=0, max_size=4096))
    def test_bitmap_words_round_trip(self, bits):
        wb = WordBitmap.from_bits(bits)
        decoded, _ = decode_record(encode_record({"bm": wb}))
        out = decoded["bm"]
        assert isinstance(out, WordBitmap)
        assert out == wb
        assert out.to_bitlist() == [1 if b else 0 for b in bits]

    def test_empty_bitmap(self):
        decoded, _ = decode_record(encode_record(WordBitmap(0)))
        assert decoded == WordBitmap(0)
        assert decoded.nbits == 0
        assert decoded.word_bytes() == b""

    def test_huge_bitmap_million_bits(self):
        n = 1_000_000
        wb = WordBitmap.from_int(n, (1 << n) - 1)
        decoded, _ = decode_record(encode_record(wb))
        assert decoded == wb
        assert decoded.popcount() == n

    def test_tuples_decode_as_lists_like_json(self):
        decoded, _ = decode_record(encode_record({"t": (1, 2, 3)}))
        assert decoded["t"] == [1, 2, 3]

    def test_raw_uint64_buffer_encodes_as_words(self):
        words = array("Q", [0, 2**64 - 1, 7])
        decoded, _ = decode_record(encode_record({"w": words}))
        assert decoded["w"] == WordBitmap(192, words)

    def test_bytes_round_trip(self):
        decoded, _ = decode_record(encode_record({"b": b"\x00\xff" * 9}))
        assert decoded["b"] == b"\x00\xff" * 9


class TestCanonicalParity:
    def test_nan_rejected_like_canonical_json(self):
        for bad in (float("nan"), float("inf"), float("-inf")):
            with pytest.raises(ValueError):
                canonical_json({"x": bad})
            with pytest.raises(ValueError):
                encode_record({"x": bad})

    def test_allow_nan_escape_hatch_for_unaddressed_records(self):
        data = encode_record({"x": float("nan")}, allow_nan=True)
        decoded, _ = decode_record(data)
        assert math.isnan(decoded["x"])

    def test_unserializable_rejected_like_canonical_json(self):
        for bad in ({1, 2}, object(), {"k": object()}):
            with pytest.raises(TypeError):
                canonical_json(bad)
            with pytest.raises(TypeError):
                encode_record(bad)

    def test_non_string_keys_rejected(self):
        with pytest.raises(TypeError):
            encode_record({1: "x"})

    @settings(max_examples=100, deadline=None)
    @given(json_values)
    def test_json_domain_parity(self, value):
        """Everything canonical JSON accepts, the binary codec accepts,
        and both see the same canonical bytes after a binary round trip."""
        decoded, _ = decode_record(encode_record(value))
        assert canonical_bytes(decoded) == canonical_bytes(value)

    def test_wordbitmap_canonicalizes_as_bit_list(self):
        wb = WordBitmap.from_bits([1, 0, 1])
        assert canonical_json({"bm": wb}) == '{"bm":[1,0,1]}'

    def test_dataclass_coercion_matches_canonical(self):
        from dataclasses import dataclass

        @dataclass(frozen=True)
        class P:
            a: int
            b: float

        p = P(3, 0.5)
        decoded, _ = decode_record(encode_record({"p": p}))
        assert decoded["p"] == {"a": 3, "b": 0.5}
        assert canonical_bytes(decoded) == canonical_bytes({"p": p})


class TestRejection:
    @settings(max_examples=60, deadline=None)
    @given(values, st.data())
    def test_truncation_always_rejected(self, value, data):
        blob = encode_record(value)
        cut = data.draw(st.integers(min_value=0, max_value=len(blob) - 1))
        with pytest.raises(BinaryFormatError):
            decode_record(blob[:cut])

    @settings(max_examples=120, deadline=None)
    @given(values, st.data())
    def test_flipped_byte_never_silently_alters_the_value(self, value, data):
        blob = bytearray(encode_record(value))
        i = data.draw(st.integers(min_value=0, max_value=len(blob) - 1))
        bit = data.draw(st.integers(min_value=0, max_value=7))
        blob[i] ^= 1 << bit
        try:
            decoded, _ = decode_record(bytes(blob))
        except BinaryFormatError:
            return  # CRC (or structure) caught it — the common case
        # A flip may cancel out only if it decodes to the same value
        # (cannot happen with CRC-32 over a single-bit flip, but the
        # contract we care about is "never a different value").
        assert canonical_bytes(decoded) == canonical_bytes(value)

    def test_bad_magic_rejected(self):
        blob = bytearray(encode_record({"x": 1}))
        blob[0] ^= 0xFF
        with pytest.raises(BinaryFormatError):
            decode_record(bytes(blob))

    def test_future_format_version_rejected(self):
        import struct
        import zlib

        blob = bytearray(encode_record({"x": 1}))
        struct.pack_into("<H", blob, 8, 999)  # version field
        struct.pack_into(  # keep the header CRC honest
            "<I", blob, 24, zlib.crc32(bytes(blob[:24]))
        )
        with pytest.raises(BinaryFormatError) as excinfo:
            decode_record(bytes(blob))
        assert "version" in str(excinfo.value)

    def test_trailing_garbage_rejected(self):
        with pytest.raises(BinaryFormatError):
            decode_record(encode_record({"x": 1}) + b"extra")

    def test_oversized_length_prefix_never_overallocates(self):
        # a field claiming more bytes than the body holds must fail on
        # the budget check, before any read/allocation is attempted
        blob = bytearray(encode_record("abcdef"))
        # tag STR at body[0], varint length at body[1]
        blob[HEADER_SIZE + 1] = 0x7F  # claim 127 bytes in a 6-byte body
        with pytest.raises(BinaryFormatError):
            decode_record(bytes(blob))

    def test_bitmap_with_bits_beyond_width_rejected(self):
        with pytest.raises(ValueError):
            WordBitmap(3, array("Q", [0b1111]))
        blob = bytearray(encode_record(WordBitmap.from_bits([1, 1, 1])))
        # set a word bit beyond nbits=3 inside the words payload
        blob[-5] |= 0b1000
        with pytest.raises(BinaryFormatError):
            decode_record(bytes(blob))


class TestJournalFraming:
    def _journal(self, events):
        buf = io.BytesIO()
        write_journal_header(buf)
        for event in events:
            append_journal_frame(buf, event)
        return buf

    def test_frames_round_trip(self):
        events = [{"kind": "meta", "n": 3}, {"kind": "trial", "i": 0}]
        buf = self._journal(events)
        buf.seek(0)
        assert list(read_journal_frames(buf)) == events

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.dictionaries(st.text(max_size=8), scalars, max_size=4),
                    max_size=6),
           st.binary(min_size=1, max_size=16))
    def test_torn_tail_yields_every_intact_frame(self, events, garbage):
        buf = self._journal(events)
        intact = buf.getvalue()
        buf.write(garbage)  # SIGKILL mid-frame
        buf.seek(0)
        recovered = list(read_journal_frames(buf))
        # the torn tail costs at most zero intact frames...
        assert recovered == events or len(recovered) < len(events)
        # ...and load_journal agrees byte-for-byte on the valid prefix
        import pathlib
        import tempfile

        path = pathlib.Path(tempfile.mkdtemp()) / "j.binj"
        path.write_bytes(buf.getvalue())
        loaded, valid = load_journal(path)
        assert loaded == recovered
        assert valid <= len(intact)

    def test_flipped_frame_crc_stops_the_stream(self):
        buf = self._journal([{"i": 0}, {"i": 1}, {"i": 2}])
        blob = bytearray(buf.getvalue())
        blob[-3] ^= 0x01  # corrupt the last frame's payload
        recovered = list(read_journal_frames(io.BytesIO(bytes(blob))))
        assert recovered == [{"i": 0}, {"i": 1}]

    def test_single_record_reader_refuses_journals(self):
        buf = self._journal([{"i": 0}])
        with pytest.raises(BinaryFormatError):
            decode_record(buf.getvalue())

    def test_journal_writer_refuses_single_record_api(self):
        with pytest.raises(ValueError):
            write_record(io.BytesIO(), {"x": 1}, RECORD_TYPE_JOURNAL)


class TestFingerprintMixing:
    def test_binary_format_version_moves_every_cache_key(self, monkeypatch):
        """A format bump must invalidate all cached keys by construction."""
        from repro.store import binary, fingerprint

        fingerprint.code_fingerprint.cache_clear()
        before = fingerprint.code_fingerprint()
        monkeypatch.setattr(binary, "BINARY_FORMAT", "repro-record-bin-v2")
        fingerprint.code_fingerprint.cache_clear()
        after = fingerprint.code_fingerprint()
        fingerprint.code_fingerprint.cache_clear()
        assert before != after
        assert BINARY_FORMAT == "repro-record-bin-v1"
