"""Tests for repro.experiments.topomap — ASCII deployment maps."""

import pytest

from repro.experiments.topomap import render_topology, tier_histogram
from repro.net.topology import PaperDeployment, paper_network


class TestRenderTopology:
    def test_reader_marked(self, small_network):
        text = render_topology(small_network)
        assert "@" in text

    def test_tier_digits_present(self, small_network):
        text = render_topology(small_network)
        assert "1" in text
        assert str(small_network.num_tiers) in text

    def test_dimensions(self, small_network):
        text = render_topology(small_network, width=40, height=12)
        body = [ln for ln in text.splitlines() if ln.startswith("│")]
        assert len(body) == 12
        assert all(len(ln) == 42 for ln in body)

    def test_too_small_rejected(self, small_network):
        with pytest.raises(ValueError):
            render_topology(small_network, width=4, height=4)

    def test_unreachable_marked(self):
        import numpy as np
        from repro.net.geometry import Point
        from repro.net.topology import Network, Reader

        positions = np.array([[1.0, 0.0], [50.0, 50.0]])
        net = Network.build(
            positions, [Reader(Point(0, 0), 10.0, 1.5)], tag_range=1.0
        )
        assert "!" in render_topology(net, width=20, height=10)

    def test_concentric_tiers(self):
        """Paper geometry: the center cell region is tier 1, the border
        region is the outermost tier."""
        net = paper_network(
            6.0, n_tags=2500, seed=3, deployment=PaperDeployment(n_tags=2500)
        )
        text = render_topology(net, width=60, height=28)
        body = [ln[1:-1] for ln in text.splitlines() if ln.startswith("│")]
        middle = body[len(body) // 2]
        center_char = middle[len(middle) // 2 - 1 : len(middle) // 2 + 2]
        assert "1" in center_char or "@" in center_char
        top = body[0].replace(" ", "")
        assert top
        assert set(top) <= {str(net.num_tiers), str(net.num_tiers - 1)}


class TestTierHistogram:
    def test_bars_per_tier(self, small_network):
        text = tier_histogram(small_network)
        assert text.count("tier") == small_network.num_tiers

    def test_counts_match(self, small_network):
        text = tier_histogram(small_network)
        sizes = small_network.tier_sizes()
        for tier, count in enumerate(sizes, start=1):
            assert f"tier {tier:>2}:" in text
            assert str(int(count)) in text
