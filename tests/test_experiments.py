"""Tests for the experiments package (small scales, shape assertions)."""


import pytest

from repro.experiments import paperconfig as cfg
from repro.experiments import (
    ablations,
    accuracy,
    analysis_vs_sim,
    extensions,
    fig3_tiers,
    master,
    theorem1_equivalence,
)
from repro.experiments.common import (
    format_table,
    make_trial,
    paper_trial_metrics,
)


# Small enough to run in seconds, large enough that the paper's
# qualitative shapes (CCM beating SICP) already hold — they emerge once
# SICP's O(n) ID traffic dwarfs the fixed paper-sized CCM frames, which
# needs n ≳ 1,500 (the benchmarks use 2,000).
SMALL = cfg.ReproScale(
    n_tags=1600, n_trials=1, tag_ranges=(3.0, 6.0, 10.0), base_seed=5
)


class TestPaperConfig:
    def test_density_matches_paper(self):
        assert cfg.DENSITY == pytest.approx(3.54, abs=0.01)

    def test_gmle_participation_rule(self):
        assert cfg.gmle_participation(10_000) == pytest.approx(
            1.59 * 1671 / 10_000
        )
        assert cfg.gmle_participation(10) == 1.0  # clamped

    def test_paper_tables_complete(self):
        for table in cfg.PAPER_TABLES.values():
            for proto in ("sicp", "gmle_ccm", "trp_ccm"):
                assert len(table[proto]) == len(cfg.TABLE_TAG_RANGES_M)

    def test_scales_note(self):
        assert "trials" in cfg.BENCH_SCALE.scaled_density_note()


class TestTrialMetrics:
    def test_metric_namespace(self):
        metrics = paper_trial_metrics(6.0, 700, seed=9)
        for proto in ("sicp", "gmle_ccm", "trp_ccm"):
            for key in ("slots", "max_sent", "avg_received"):
                assert f"{proto}_{key}" in metrics
        assert metrics["tiers"] >= 2

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ValueError):
            paper_trial_metrics(6.0, 100, seed=1, protocols=("bogus",))

    def test_trial_fn_deterministic(self):
        trial = make_trial(6.0, 500)
        assert trial(0, 42) == trial(0, 42)

    def test_sicp_collects_reachable(self):
        metrics = paper_trial_metrics(6.0, 700, seed=3, protocols=("sicp",))
        assert metrics["sicp_collected"] == metrics["reachable"]


class TestFig3:
    def test_shapes(self):
        result = fig3_tiers.run(SMALL)
        assert len(result.measured_tiers) == 3
        # Non-increasing in r.
        assert result.measured_tiers[0] >= result.measured_tiers[-1]
        assert result.geometric_tiers == [5, 3, 2]

    def test_report_renders(self):
        result = fig3_tiers.run(SMALL)
        text = fig3_tiers.report(result)
        assert "Fig. 3" in text and "geometric" in text


class TestMaster:
    @pytest.fixture(scope="class")
    def result(self):
        return master.run(SMALL)

    def test_ccm_beats_sicp_on_time(self, result):
        fig4 = result.fig4_execution_time()
        for i in range(len(result.tag_ranges)):
            assert fig4["gmle_ccm"][i] < fig4["sicp"][i]
            assert fig4["trp_ccm"][i] < fig4["sicp"][i]

    def test_ccm_sent_bits_orders_below_sicp(self, result):
        t3 = result.table3_avg_sent()
        for i in range(len(result.tag_ranges)):
            assert t3["gmle_ccm"][i] * 3 < t3["sicp"][i]

    def test_ccm_received_below_sicp(self, result):
        t4 = result.table4_avg_received()
        for i in range(len(result.tag_ranges)):
            assert t4["gmle_ccm"][i] < t4["sicp"][i]
            assert t4["trp_ccm"][i] < t4["sicp"][i]

    def test_trp_gmle_cost_tracks_frame_ratio(self, result):
        """CCM's received bits scale with the frame size: the TRP:GMLE
        cost ratio follows f_trp/f_gmle (at the paper's scale TRP's frame
        is ~2x GMLE's, so TRP costs more; at reduced populations TRP's
        frame is resized down by trp_frame_for and can be cheaper)."""
        frame_ratio = cfg.trp_frame_for(SMALL.n_tags) / cfg.GMLE_FRAME_SIZE
        t4 = result.table4_avg_received()
        for i in range(len(result.tag_ranges)):
            cost_ratio = t4["trp_ccm"][i] / t4["gmle_ccm"][i]
            assert cost_ratio == pytest.approx(frame_ratio, rel=0.35)

    def test_report_includes_paper_rows_at_table_ranges(self):
        small5 = cfg.ReproScale(
            n_tags=500, n_trials=1, tag_ranges=cfg.TABLE_TAG_RANGES_M,
            base_seed=5,
        )
        result = master.run(small5)
        text = master.report(result)
        assert "(paper)" in text
        assert "Table IV" in text

    def test_report_omits_paper_rows_otherwise(self, result):
        text = master.report(result)
        assert "Table I" in text
        assert "41,767" not in text  # paper row suppressed off-grid


class TestFormatTable:
    def test_renders_measured_and_paper(self):
        text = format_table(
            "T", [2.0, 4.0],
            {"sicp": [1.0, 2.0]},
            {"sicp": [10.0, 20.0]},
        )
        assert "SICP (measured)" in text
        assert "SICP (paper)" in text
        assert "r=2" in text


class TestTheorem1Experiment:
    def test_all_cases_equal(self):
        result = theorem1_equivalence.run(n_tags=600, n_deployments=2)
        assert result.all_equal
        assert len(result.cases) == 10
        text = theorem1_equivalence.report(result)
        assert "PASS" in text


class TestAccuracyExperiment:
    def test_estimation_runs(self):
        result = accuracy.run_estimation(n_tags=600, n_runs=4)
        assert len(result.estimates) == 4
        assert all(e > 0 for e in result.estimates)
        assert "coverage" in accuracy.report_estimation(result)

    def test_detection_curve_shape(self):
        result = accuracy.run_detection(
            n_tags=500, frame_size=160, missing_counts=[1, 10, 40], n_runs=6
        )
        assert len(result.empirical) == 3
        # Analytic curve is monotone; empirical should not be wildly off.
        assert result.analytic[0] < result.analytic[-1]
        assert "TRP" in accuracy.report_detection(result)


class TestAblationExperiments:
    def test_indicator_ablation_direction(self):
        result = ablations.run_indicator_ablation(
            n_tags=500, tag_ranges=(4.0,), n_trials=2, frame_size=256
        )
        with_iv = result.with_indicator[0]
        without_iv = result.without_indicator[0]
        assert without_iv["avg_sent"] > with_iv["avg_sent"]
        assert "Ablation" in ablations.report_indicator(result)

    def test_checking_ablation_completeness(self):
        rows = ablations.run_checking_ablation(
            n_tags=500, tag_range=3.0, n_trials=2, frame_size=256
        )
        by_lc = {row.checking_length: row for row in rows}
        longest = max(by_lc)
        assert by_lc[longest].complete_fraction == 1.0
        assert by_lc[1].complete_fraction < 1.0
        assert "L_c" in ablations.report_checking(rows)

    def test_load_sweep_minimum_near_optimum(self):
        rows = ablations.run_load_sweep()
        best = min(rows, key=lambda r: r["relative_stderr"])
        assert best["load"] == pytest.approx(1.59, abs=0.01)
        assert "1.59" in ablations.report_load(rows)

    def test_density_ablation_monotone(self):
        rows = ablations.run_density_ablation(
            populations=(400, 1600), n_trials=2
        )
        assert (
            rows[0]["reachable_fraction"] <= rows[1]["reachable_fraction"] + 0.05
        )
        assert "density" in ablations.report_density(rows).lower()


class TestAnalysisVsSim:
    def test_predictions_within_magnitude(self):
        rows = analysis_vs_sim.run(
            n_tags=2_000, tag_ranges=[6.0], base_seed=1
        )
        row = rows[0]
        assert row.predicted_slots >= row.measured_slots * 0.95
        ratio = row.predicted_avg_received / row.measured_avg_received
        assert 0.3 < ratio < 3.0
        assert "Eqs" in analysis_vs_sim.report(rows)


class TestExtensionExperiments:
    def test_load_balance_direction(self):
        rows = extensions.run_load_balance(n_tags=600, tag_ranges=(6.0,))
        row = rows[0]
        assert row.ccm_ratio_received < 1.5
        assert row.sicp_ratio_sent > row.ccm_ratio_sent
        assert "balance" in extensions.report_load_balance(rows).lower()

    def test_multireader_demo(self):
        result = extensions.run_multireader_demo(n_tags=1200)
        assert result.combined_equals_reference
        assert result.n_readers == 3
        assert "Eq. 1" in extensions.report_multireader(result)

    def test_cicp_comparison(self):
        rows = extensions.run_cicp_comparison(n_tags=400, tag_ranges=(6.0,))
        row = rows[0]
        assert row.cicp_seconds > row.sicp_seconds
        assert row.sicp_collected == row.cicp_collected
        assert "CICP" in extensions.report_cicp(rows)


class TestPerTierAnalysis:
    def test_received_predictions_track_measurement(self):
        rows = analysis_vs_sim.run_per_tier(n_tags=2000, seed=1)
        assert len(rows) >= 2
        for row in rows:
            ratio = row.predicted_received / max(row.measured_received, 1.0)
            assert 0.5 < ratio < 2.0
        assert "tier" in analysis_vs_sim.report_per_tier(rows)

    def test_sent_predictions_right_magnitude(self):
        rows = analysis_vs_sim.run_per_tier(n_tags=2000, seed=2)
        for row in rows[1:]:  # tier-1 worst-case deliberately overshoots
            ratio = row.predicted_sent / max(row.measured_sent, 1e-9)
            assert 0.2 < ratio < 5.0
