"""Property-based tests (hypothesis) on core data structures & invariants."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.geometry import lens_area
from repro.core.bitmap import Bitmap, union
from repro.core.session import CCMConfig, run_session
from repro.net.geometry import Point, uniform_disk
from repro.net.topology import Network, Reader
from repro.protocols.gmle import FrameObservation, mle_estimate
from repro.protocols.transport import frame_picks, ideal_bitmap
from repro.sim.rng import TagHasher, splitmix64

sizes = st.integers(min_value=1, max_value=300)


@st.composite
def bitmap_pairs(draw):
    size = draw(sizes)
    a = draw(st.integers(min_value=0, max_value=(1 << size) - 1))
    b = draw(st.integers(min_value=0, max_value=(1 << size) - 1))
    return Bitmap(size, a), Bitmap(size, b)


class TestBitmapAlgebra:
    @given(bitmap_pairs())
    def test_or_is_commutative(self, pair):
        a, b = pair
        assert a | b == b | a

    @given(bitmap_pairs())
    def test_or_is_idempotent_on_union(self, pair):
        a, b = pair
        c = a | b
        assert c | a == c
        assert c | b == c

    @given(bitmap_pairs())
    def test_popcount_inclusion_exclusion(self, pair):
        a, b = pair
        assert (a | b).popcount() + (a & b).popcount() == (
            a.popcount() + b.popcount()
        )

    @given(bitmap_pairs())
    def test_difference_disjoint_from_other(self, pair):
        a, b = pair
        assert (a.difference(b) & b).is_empty()

    @given(bitmap_pairs())
    def test_xor_is_symmetric_difference(self, pair):
        a, b = pair
        assert a ^ b == (a.difference(b)) | (b.difference(a))

    @given(bitmap_pairs())
    def test_demorgan(self, pair):
        a, b = pair
        assert ~(a | b) == (~a) & (~b)

    @given(st.lists(st.integers(min_value=0, max_value=199), max_size=40))
    def test_indices_roundtrip(self, indices):
        bm = Bitmap.from_indices(200, indices)
        assert set(bm.indices()) == set(indices)

    @given(
        st.integers(min_value=1, max_value=500),
        st.integers(min_value=1, max_value=128),
    )
    def test_segments_roundtrip(self, size, width):
        bm = Bitmap(size, (1 << size) - 1 if size % 2 else (1 << size) // 3)
        assert Bitmap.from_segments(size, bm.segments(width), width) == bm

    @given(st.lists(bitmap_pairs(), min_size=1, max_size=5))
    def test_union_order_invariant(self, pairs):
        size = pairs[0][0].size
        maps = [Bitmap(size, p[0].bits % (1 << size)) for p in pairs]
        assert union(maps, size) == union(list(reversed(maps)), size)


class TestHashingProperties:
    @given(st.integers(min_value=0, max_value=2**64 - 1))
    def test_splitmix_in_range(self, x):
        assert 0 <= splitmix64(x) < 2**64

    @given(
        st.integers(min_value=0, max_value=2**32),
        st.integers(min_value=1, max_value=10_000),
        st.integers(min_value=1, max_value=5_000),
    )
    def test_slot_pick_stable_and_bounded(self, seed, tag_id, frame):
        h = TagHasher(seed)
        slot = h.slot_of(tag_id, frame)
        assert 0 <= slot < frame
        assert slot == TagHasher(seed).slot_of(tag_id, frame)

    @given(st.integers(min_value=0, max_value=2**32), st.floats(0.0, 1.0))
    def test_participation_deterministic(self, seed, p):
        h = TagHasher(seed)
        assert h.participates(17, p) == h.participates(17, p)


class TestLensProperties:
    radii = st.floats(min_value=0.01, max_value=50.0)

    @given(radii, radii, st.floats(min_value=0.0, max_value=120.0))
    def test_bounded_by_smaller_disk(self, a, b, d):
        area = lens_area(a, b, d)
        smallest = math.pi * min(a, b) ** 2
        assert -1e-9 <= area <= smallest + 1e-9

    @given(radii, radii, st.floats(min_value=0.0, max_value=120.0))
    def test_symmetric_in_radii(self, a, b, d):
        assert lens_area(a, b, d) == pytest.approx(
            lens_area(b, a, d), rel=1e-9, abs=1e-9
        )

    @given(radii, radii)
    def test_monotone_in_distance(self, a, b):
        distances = [0.0, 0.5 * (a + b), a + b + 1.0]
        areas = [lens_area(a, b, d) for d in distances]
        assert areas[0] >= areas[1] >= areas[2]


class TestMLEProperties:
    @given(
        st.integers(min_value=50, max_value=5000),
        st.integers(min_value=64, max_value=2048),
    )
    @settings(max_examples=30, deadline=None)
    def test_mle_inverts_expectation(self, n, f):
        """Feeding the exact expected idle count recovers ~n (when the
        frame is informative: not saturated, not empty)."""
        q = (1 - 1.0 / f) ** n
        idle = round(f * q)
        if idle <= 0 or idle >= f:
            return
        est = mle_estimate([FrameObservation(f, 1.0, idle)])
        # Rounding the idle count quantises the estimate; allow that.
        assert est == pytest.approx(n, rel=0.25)

    @given(st.integers(min_value=1, max_value=63))
    def test_mle_monotone_in_idle(self, idle):
        lo = mle_estimate([FrameObservation(64, 1.0, idle)])
        hi = mle_estimate([FrameObservation(64, 1.0, idle + 1)])
        assert lo >= hi


@st.composite
def deployments(draw):
    n = draw(st.integers(min_value=30, max_value=120))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    tag_range = draw(st.sampled_from([3.0, 5.0, 8.0]))
    positions = uniform_disk(n, 15.0, seed=seed)
    reader = Reader(Point(0, 0), reader_to_tag_range=15.0,
                    tag_to_reader_range=6.0)
    return Network.build(positions, [reader], tag_range), seed


class TestNetworkProperties:
    @given(deployments())
    @settings(max_examples=25, deadline=None)
    def test_adjacency_symmetric(self, built):
        net, _ = built
        neigh = [set(net.neighbors(i).tolist()) for i in range(net.n_tags)]
        for i in range(net.n_tags):
            assert i not in neigh[i]
            for j in neigh[i]:
                assert i in neigh[j]

    @given(deployments())
    @settings(max_examples=25, deadline=None)
    def test_tier_steps_by_one_hop(self, built):
        """A reachable tag's tier exceeds its best neighbour's by exactly
        one (BFS invariant), except tier-1 tags."""
        net, _ = built
        for i in range(net.n_tags):
            t = net.tiers[i]
            if t <= 1:
                continue
            neighbor_tiers = [
                net.tiers[j] for j in net.neighbors(i) if net.tiers[j] > 0
            ]
            if t > 0:
                assert neighbor_tiers, "reachable non-tier-1 tag must have neighbors"
                assert min(neighbor_tiers) == t - 1


class TestSessionProperties:
    @given(
        deployments(),
        st.integers(min_value=16, max_value=256),
        st.floats(min_value=0.1, max_value=1.0),
    )
    @settings(max_examples=20, deadline=None)
    def test_theorem1_equivalence(self, built, frame_size, probability):
        """The headline invariant: with a checking frame long enough for
        the realised topology, CCM's bitmap equals the single-hop bitmap
        over the reachable population — for arbitrary deployments, frame
        sizes and sampling probabilities.  (The paper's range-based L_c
        estimate assumes dense deployments; sparse random graphs can have
        more hops than distance/r, so the invariant test supplies the
        topology-aware length.  The ablation experiment covers the
        too-short case.)"""
        net, seed = built
        l_c = 2 * max(net.num_tiers, 1) + 2
        picks = frame_picks(net.tag_ids, frame_size, probability, seed)
        result = run_session(
            net,
            picks,
            config=CCMConfig(frame_size=frame_size, checking_frame_length=l_c,
                      max_rounds=net.n_tags + 1),
        )
        reachable = net.tag_ids[net.reachable_mask]
        assert result.terminated_cleanly
        assert result.bitmap == ideal_bitmap(
            reachable, frame_size, probability, seed
        )

    @given(deployments())
    @settings(max_examples=20, deadline=None)
    def test_unclean_termination_is_the_data_loss_signal(self, built):
        """If a session reports clean termination, no reachable tag's bit
        was dropped — even when L_c came from the paper's heuristic."""
        net, seed = built
        picks = frame_picks(net.tag_ids, 64, 1.0, seed)
        result = run_session(net, picks, config=CCMConfig(frame_size=64))
        if result.terminated_cleanly:
            reachable = net.tag_ids[net.reachable_mask]
            reference = ideal_bitmap(reachable, 64, 1.0, seed)
            assert reference.difference(result.bitmap).is_empty()

    @given(deployments())
    @settings(max_examples=15, deadline=None)
    def test_rounds_bounded_by_tiers_plus_one(self, built):
        net, seed = built
        picks = frame_picks(net.tag_ids, 64, 1.0, seed)
        result = run_session(net, picks, config=CCMConfig(frame_size=64))
        if result.terminated_cleanly and net.num_tiers > 0:
            assert result.rounds <= max(net.num_tiers, 1) + 1

    @given(deployments())
    @settings(max_examples=15, deadline=None)
    def test_energy_non_negative_and_bounded(self, built):
        net, seed = built
        f = 64
        picks = frame_picks(net.tag_ids, f, 1.0, seed)
        result = run_session(net, picks, config=CCMConfig(frame_size=f))
        assert np.all(result.ledger.bits_sent >= 0)
        # A tag cannot transmit more than one bit per slot of any frame.
        max_possible = result.rounds * f + sum(
            s.checking_slots_executed for s in result.round_stats
        )
        assert np.all(result.ledger.bits_sent <= max_possible)
