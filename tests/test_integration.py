"""Integration tests: full protocol stacks over shared deployments.

These exercise the library the way the examples and experiments do —
network construction through protocol execution through metric extraction —
and pin the paper's qualitative claims at a scale where they already hold.
"""

import numpy as np
import pytest

from repro.core.session import CCMConfig, run_session
from repro.experiments import paperconfig as cfg
from repro.net.topology import PaperDeployment, paper_network
from repro.protocols.gmle import GMLEProtocol
from repro.protocols.sicp import run_sicp
from repro.protocols.transport import (
    CCMTransport,
    TraditionalTransport,
    frame_picks,
    ideal_bitmap,
)
from repro.protocols.trp import TRPProtocol


@pytest.fixture(scope="module")
def warehouse():
    """A 2,000-tag deployment at r = 6 m — the benchmark scale, where the
    paper's qualitative results are already visible."""
    return paper_network(
        6.0, n_tags=2000, seed=2019, deployment=PaperDeployment(n_tags=2000)
    )


class TestEndToEndEstimation:
    def test_estimate_close_to_truth(self, warehouse):
        transport = CCMTransport(warehouse)
        protocol = GMLEProtocol(alpha=0.95, beta=0.05)
        result = protocol.estimate(transport, seed=1)
        n_true = int(warehouse.reachable_mask.sum())
        assert result.estimate == pytest.approx(n_true, rel=0.1)

    def test_estimation_cost_orders_below_sicp(self, warehouse):
        transport = CCMTransport(warehouse)
        GMLEProtocol(known_rough_estimate=2000).estimate(transport, seed=2)
        sicp = run_sicp(warehouse, seed=2)
        assert transport.slots.total_slots < sicp.total_slots / 3
        assert transport.ledger.avg_sent() < sicp.ledger.avg_sent() / 3
        assert transport.ledger.avg_received() < sicp.ledger.avg_received() / 2


class TestEndToEndDetection:
    def test_full_inventory_pipeline(self, warehouse):
        known = [int(t) for t in warehouse.tag_ids]
        # Steal 60 tags (1.5x the tolerance scaled down).
        rng = np.random.default_rng(99)
        stolen = set(
            int(warehouse.tag_ids[i])
            for i in rng.choice(2000, size=60, replace=False)
        )
        keep = np.array([int(t) not in stolen for t in warehouse.tag_ids])
        present = warehouse.subset(keep)
        transport = CCMTransport(present)
        protocol = TRPProtocol(frame_size=2048)
        result = protocol.detect(transport, known, seed=5)
        assert result.detected
        assert set(result.suspicious_ids) <= stolen
        assert len(result.suspicious_ids) > 0

    def test_intact_inventory_never_alarms(self, warehouse):
        known = [int(t) for t in warehouse.tag_ids]
        if not warehouse.is_fully_reachable():
            known = [
                int(t) for t in warehouse.tag_ids[warehouse.reachable_mask]
            ]
        transport = CCMTransport(warehouse)
        for seed in (11, 12, 13):
            result = TRPProtocol(frame_size=1024).detect(
                transport, known, seed=seed
            )
            assert not result.detected


class TestCostShapes:
    """The paper's qualitative cost claims at bench scale (Sec. VI-B)."""

    @pytest.fixture(scope="class")
    def by_range(self):
        out = {}
        for r in (3.0, 6.0, 10.0):
            net = paper_network(
                r, n_tags=2000, seed=7, deployment=PaperDeployment(n_tags=2000)
            )
            picks = frame_picks(
                net.tag_ids, cfg.GMLE_FRAME_SIZE,
                cfg.gmle_participation(2000), seed=7,
            )
            ccm = run_session(
                net, picks, config=CCMConfig(frame_size=cfg.GMLE_FRAME_SIZE))
            sicp = run_sicp(net, seed=7)
            out[r] = (net, ccm, sicp)
        return out

    def test_ccm_time_decreases_with_r(self, by_range):
        slots = [by_range[r][1].total_slots for r in (3.0, 6.0, 10.0)]
        assert slots[0] > slots[1] >= slots[2]

    def test_ccm_beats_sicp_time_everywhere(self, by_range):
        for r, (net, ccm, sicp) in by_range.items():
            assert ccm.total_slots < sicp.total_slots

    def test_ccm_received_decreases_with_r(self, by_range):
        received = [
            by_range[r][1].ledger.avg_received() for r in (3.0, 6.0, 10.0)
        ]
        assert received[0] > received[1] > received[2]

    def test_ccm_sent_increases_with_r(self, by_range):
        sent = [by_range[r][1].ledger.avg_sent() for r in (3.0, 6.0, 10.0)]
        assert sent[0] < sent[1] < sent[2]

    def test_sicp_max_sent_dominated_by_roots(self, by_range):
        for r, (net, ccm, sicp) in by_range.items():
            assert (
                sicp.ledger.max_sent() > 10 * ccm.ledger.max_sent()
            )

    def test_ccm_load_balanced_sicp_not(self, by_range):
        for r, (net, ccm, sicp) in by_range.items():
            assert ccm.ledger.load_balance_ratio() < 1.3
            assert (
                sicp.ledger.max_sent() / sicp.ledger.avg_sent()
                > ccm.ledger.max_sent() / max(ccm.ledger.avg_sent(), 1e-9)
            )


class TestMultiSessionStateFreedom:
    def test_sessions_independent(self, warehouse):
        """State-free tags: running a session twice with the same seed
        yields identical results (no state carries over)."""
        picks = frame_picks(warehouse.tag_ids, 512, 1.0, seed=3)
        a = run_session(warehouse, picks, config=CCMConfig(frame_size=512))
        b = run_session(warehouse, picks, config=CCMConfig(frame_size=512))
        assert a.bitmap == b.bitmap
        assert a.rounds == b.rounds
        assert a.total_slots == b.total_slots
        assert np.array_equal(a.ledger.bits_sent, b.ledger.bits_sent)

    def test_different_seeds_different_bitmaps(self, warehouse):
        p1 = frame_picks(warehouse.tag_ids, 512, 1.0, seed=3)
        p2 = frame_picks(warehouse.tag_ids, 512, 1.0, seed=4)
        a = run_session(warehouse, p1, config=CCMConfig(frame_size=512))
        b = run_session(warehouse, p2, config=CCMConfig(frame_size=512))
        assert a.bitmap != b.bitmap


class TestTheorem1AtScale:
    @pytest.mark.parametrize("r", [3.0, 6.0, 10.0])
    def test_equivalence(self, r):
        net = paper_network(
            r, n_tags=2000, seed=31, deployment=PaperDeployment(n_tags=2000)
        )
        picks = frame_picks(net.tag_ids, 1024, 0.6, seed=31)
        result = run_session(net, picks, config=CCMConfig(frame_size=1024))
        reachable = net.tag_ids[net.reachable_mask]
        assert result.bitmap == ideal_bitmap(reachable, 1024, 0.6, 31)

    def test_protocol_level_equivalence(self, warehouse):
        """The same GMLE run over CCM and over a traditional reader returns
        the identical estimate (identical bitmaps, Theorem 1)."""
        reachable = warehouse.tag_ids[warehouse.reachable_mask]
        est_ccm = GMLEProtocol(known_rough_estimate=2000).estimate(
            CCMTransport(warehouse), seed=55
        )
        est_trad = GMLEProtocol(known_rough_estimate=2000).estimate(
            TraditionalTransport(reachable), seed=55
        )
        assert est_ccm.estimate == est_trad.estimate
